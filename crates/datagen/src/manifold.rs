//! High ambient dimension, low intrinsic dimension: the regime the paper's
//! Assumption 1 is about, realized synthetically.

use mdbscan_metric::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::randutil::{normal, normal_vec, uniform_vec};

/// Specification for [`manifold_clusters`].
#[derive(Debug, Clone)]
pub struct ManifoldSpec {
    /// Total inlier count.
    pub n: usize,
    /// Ambient dimension (e.g. 784 for the MNIST class, 3072 for CIFAR).
    pub ambient_dim: usize,
    /// Intrinsic dimension of the shared affine manifold the clusters live
    /// on — the doubling dimension of the inliers is `O(intrinsic_dim)`
    /// regardless of `ambient_dim`, which is exactly Assumption 1.
    pub intrinsic_dim: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Cluster standard deviation in manifold coordinates.
    pub std: f64,
    /// Half side of the box (in manifold coordinates) cluster centers are
    /// drawn from.
    pub center_box: f64,
    /// Fraction of `n` added as outliers **uniform in the full ambient
    /// box** — they have ambient doubling dimension, i.e. they break any
    /// assumption, as the paper's threat model demands.
    pub outlier_frac: f64,
    /// Half side of the ambient outlier box.
    pub ambient_box: f64,
}

impl Default for ManifoldSpec {
    fn default() -> Self {
        Self {
            n: 2000,
            ambient_dim: 128,
            intrinsic_dim: 4,
            clusters: 5,
            std: 0.5,
            center_box: 20.0,
            outlier_frac: 0.01,
            ambient_box: 40.0,
        }
    }
}

/// Gaussian clusters supported on a random `intrinsic_dim`-dimensional
/// affine subspace of `R^{ambient_dim}`, plus uniform ambient outliers.
///
/// The subspace basis is drawn Gaussian and orthonormalized
/// (Gram–Schmidt), so inlier pairwise distances equal their
/// manifold-coordinate distances: the inliers genuinely have low doubling
/// dimension while sitting in a huge ambient space.
pub fn manifold_clusters(spec: &ManifoldSpec, seed: u64) -> Dataset<Vec<f64>> {
    assert!(spec.intrinsic_dim <= spec.ambient_dim);
    let mut rng = StdRng::seed_from_u64(seed);
    // Orthonormal basis of the manifold.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(spec.intrinsic_dim);
    while basis.len() < spec.intrinsic_dim {
        let mut v = normal_vec(&mut rng, spec.ambient_dim);
        for b in &basis {
            let dot: f64 = v.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            for (x, y) in v.iter_mut().zip(b.iter()) {
                *x -= dot * y;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-8 {
            for x in v.iter_mut() {
                *x /= norm;
            }
            basis.push(v);
        }
    }
    let embed = |coords: &[f64], basis: &[Vec<f64>], d: usize| -> Vec<f64> {
        let mut p = vec![0.0; d];
        for (c, b) in coords.iter().zip(basis.iter()) {
            for (pi, bi) in p.iter_mut().zip(b.iter()) {
                *pi += c * bi;
            }
        }
        p
    };
    // Cluster centers in manifold coordinates, separation-rejected.
    let mut centers: Vec<Vec<f64>> = Vec::new();
    let min_sep = 8.0 * spec.std;
    let mut attempts = 0;
    while centers.len() < spec.clusters {
        let c = uniform_vec(
            &mut rng,
            spec.intrinsic_dim,
            -spec.center_box,
            spec.center_box,
        );
        attempts += 1;
        let ok = centers.iter().all(|o| {
            let d2: f64 = o.iter().zip(c.iter()).map(|(x, y)| (x - y).powi(2)).sum();
            d2.sqrt() >= min_sep
        });
        if ok || attempts > 2000 {
            centers.push(c);
        }
    }
    let mut points = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let k = i % spec.clusters;
        let coords: Vec<f64> = centers[k]
            .iter()
            .map(|&c| c + spec.std * normal(&mut rng))
            .collect();
        points.push(embed(&coords, &basis, spec.ambient_dim));
        labels.push(k as i32);
    }
    let outliers = ((spec.n as f64) * spec.outlier_frac) as usize;
    for _ in 0..outliers {
        points.push(uniform_vec(
            &mut rng,
            spec.ambient_dim,
            -spec.ambient_box,
            spec.ambient_box,
        ));
        labels.push(-1);
    }
    Dataset::with_labels("manifold", points, labels)
}

/// The paper's §5.1 densification protocol (used for `MNIST_noisy` /
/// `Fashion_noisy` and the high-dimensional runtime datasets): take a base
/// dataset, duplicate every point `copies` times adding per-coordinate
/// `U[−noise, noise]`, then append `outlier_frac` uniform outliers over
/// `[box_lo, box_hi]^d`. Labels are inherited from the base.
pub fn noisy_duplication(
    base: &Dataset<Vec<f64>>,
    copies: usize,
    noise: f64,
    outlier_frac: f64,
    box_lo: f64,
    box_hi: f64,
    seed: u64,
) -> Dataset<Vec<f64>> {
    assert!(copies >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let d = base.points().first().map_or(0, Vec::len);
    let base_labels: Vec<i32> = base
        .labels()
        .map(|l| l.to_vec())
        .unwrap_or_else(|| vec![0; base.len()]);
    let mut points = Vec::with_capacity(base.len() * copies);
    let mut labels = Vec::with_capacity(base.len() * copies);
    for (p, &l) in base.points().iter().zip(base_labels.iter()) {
        for _ in 0..copies {
            let q: Vec<f64> = p
                .iter()
                .map(|&x| x + rng.random_range(-noise..noise))
                .collect();
            points.push(q);
            labels.push(l);
        }
    }
    let outliers = ((points.len() as f64) * outlier_frac) as usize;
    for _ in 0..outliers {
        points.push(uniform_vec(&mut rng, d, box_lo, box_hi));
        labels.push(-1);
    }
    Dataset::with_labels(format!("{}_noisy", base.name()), points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{estimate_doubling_dimension, validate_vectors, Euclidean};

    #[test]
    fn manifold_has_low_intrinsic_dimension() {
        let spec = ManifoldSpec {
            n: 600,
            ambient_dim: 64,
            intrinsic_dim: 2,
            clusters: 3,
            outlier_frac: 0.0,
            ..Default::default()
        };
        let ds = manifold_clusters(&spec, 11);
        validate_vectors(ds.points()).unwrap();
        let est = estimate_doubling_dimension(&ds.points()[..300], &Euclidean, 5);
        assert!(
            est.dimension < 8.0,
            "intrinsic-2 manifold in 64-d should probe low, got {}",
            est.dimension
        );
    }

    #[test]
    fn embedding_is_isometric() {
        // distances between inliers equal manifold-coordinate distances —
        // verified indirectly: all inlier coordinates lie in the span, so
        // the Gram matrix of a few points has rank <= intrinsic_dim.
        let spec = ManifoldSpec {
            n: 50,
            ambient_dim: 32,
            intrinsic_dim: 3,
            clusters: 1,
            outlier_frac: 0.0,
            ..Default::default()
        };
        let ds = manifold_clusters(&spec, 3);
        let pts = ds.points();
        // center the points, then check that any 5 points' pairwise-diff
        // vectors have near-zero volume in dimensions > 3 (crude rank
        // check by Gram determinant growth).
        let diffs: Vec<Vec<f64>> = (1..6)
            .map(|i| {
                pts[i]
                    .iter()
                    .zip(pts[0].iter())
                    .map(|(a, b)| a - b)
                    .collect()
            })
            .collect();
        // Gram matrix of 5 diffs; its rank should be <= 3, so det ≈ 0.
        let gram: Vec<Vec<f64>> = diffs
            .iter()
            .map(|u| {
                diffs
                    .iter()
                    .map(|v| u.iter().zip(v.iter()).map(|(a, b)| a * b).sum())
                    .collect()
            })
            .collect();
        let det = det5(&gram);
        let scale: f64 = gram.iter().map(|r| r[0].abs().max(1.0)).product();
        assert!(det.abs() / scale < 1e-6, "rank exceeded intrinsic dim");
    }

    fn det5(m: &[Vec<f64>]) -> f64 {
        // Gaussian elimination, 5x5.
        let mut a: Vec<Vec<f64>> = m.to_vec();
        let mut det = 1.0;
        for i in 0..5 {
            let mut piv = i;
            for r in i + 1..5 {
                if a[r][i].abs() > a[piv][i].abs() {
                    piv = r;
                }
            }
            if a[piv][i].abs() < 1e-300 {
                return 0.0;
            }
            if piv != i {
                a.swap(piv, i);
                det = -det;
            }
            det *= a[i][i];
            for r in i + 1..5 {
                let f = a[r][i] / a[i][i];
                #[allow(clippy::needless_range_loop)] // row r and pivot row i alias
                for c in i..5 {
                    a[r][c] -= f * a[i][c];
                }
            }
        }
        det
    }

    #[test]
    fn noisy_duplication_protocol() {
        let base = crate::blobs(
            &crate::BlobSpec {
                n: 100,
                dim: 16,
                clusters: 2,
                std: 1.0,
                center_box: 100.0,
                outlier_frac: 0.0,
            },
            5,
        );
        let ds = noisy_duplication(&base, 10, 5.0, 0.01, 0.0, 255.0, 6);
        assert_eq!(ds.len(), 1000 + 10);
        assert!(ds.name().ends_with("_noisy"));
        let labels = ds.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 10);
        // copies stay within the noise box of their base point
        for (i, p) in ds.points().iter().take(1000).enumerate() {
            let b = &base.points()[i / 10];
            for (x, y) in p.iter().zip(b.iter()) {
                assert!((x - y).abs() <= 5.0);
            }
        }
    }

    #[test]
    fn outliers_are_ambient() {
        let spec = ManifoldSpec {
            n: 200,
            ambient_dim: 32,
            intrinsic_dim: 2,
            clusters: 2,
            outlier_frac: 0.2,
            ..Default::default()
        };
        let ds = manifold_clusters(&spec, 9);
        let labels = ds.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 40);
    }
}
