//! A restartable, drifting point stream — the Spotify_Session stand-in
//! for the streaming experiments (§5.6). Real session logs drift over
//! time; the paper slices the stream into 1 %/10 %/50 %/100 % prefixes and
//! treats them as different datasets. This source reproduces that shape:
//! Gaussian sources whose centers wander as the stream progresses, plus a
//! constant rain of uniform outliers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::randutil::{normal, uniform_vec};

/// A deterministic, restartable stream of `dim`-dimensional points.
///
/// `iter()` replays the identical sequence every time — exactly the
/// contract Algorithm 3's three passes need. Ground-truth source labels
/// are available via [`DriftingStream::labeled_iter`] (`-1` = outlier).
///
/// Inlier points live on a random `intrinsic_dim`-dimensional subspace of
/// the ambient space (sources and their drift included); outliers are
/// ambient. This mirrors the paper's Assumption 1 — real session feature
/// vectors are far from isotropic — and is what keeps the streaming
/// algorithm's `(Δ/ρε)^D` memory bound meaningful.
#[derive(Debug, Clone)]
pub struct DriftingStream {
    /// Stream length.
    pub n: usize,
    /// Ambient point dimension.
    pub dim: usize,
    /// Intrinsic dimension of the inlier subspace (≤ `dim`).
    pub intrinsic_dim: usize,
    /// Number of drifting Gaussian sources.
    pub sources: usize,
    /// Per-coordinate std of each source.
    pub std: f64,
    /// Drift magnitude: how far a source's center moves (per coordinate,
    /// per emitted point, as a random walk step).
    pub drift: f64,
    /// Probability that a stream element is a uniform outlier.
    pub outlier_prob: f64,
    /// Half side of the outlier box.
    pub boxsize: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DriftingStream {
    fn default() -> Self {
        Self {
            n: 10_000,
            dim: 8,
            intrinsic_dim: 4,
            sources: 4,
            std: 0.5,
            drift: 0.002,
            outlier_prob: 0.01,
            boxsize: 50.0,
            seed: 0,
        }
    }
}

impl DriftingStream {
    /// Replayable iterator over the points.
    pub fn iter(&self) -> impl Iterator<Item = Vec<f64>> + '_ {
        self.labeled_iter().map(|(p, _)| p)
    }

    /// Replayable iterator over `(point, source label)`; `-1` = outlier.
    pub fn labeled_iter(&self) -> impl Iterator<Item = (Vec<f64>, i32)> + '_ {
        let m = self.intrinsic_dim.clamp(1, self.dim);
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Orthonormal basis of the inlier subspace (Gram–Schmidt).
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
        while basis.len() < m {
            let mut v: Vec<f64> = (0..self.dim).map(|_| normal(&mut rng)).collect();
            for b in &basis {
                let dot: f64 = v.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
                for (x, y) in v.iter_mut().zip(b.iter()) {
                    *x -= dot * y;
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-8 {
                for x in v.iter_mut() {
                    *x /= norm;
                }
                basis.push(v);
            }
        }
        // Initial source centers, well separated along a subspace diagonal
        // (in manifold coordinates).
        let mut centers: Vec<Vec<f64>> = (0..self.sources)
            .map(|k| {
                let off = (k as f64 - (self.sources as f64 - 1.0) / 2.0) * 12.0 * self.std.max(1.0);
                (0..m).map(|_| off).collect()
            })
            .collect();
        let mut emitted = 0usize;
        std::iter::from_fn(move || {
            if emitted >= self.n {
                return None;
            }
            emitted += 1;
            // Drift every source a tiny random-walk step (in the subspace).
            for c in centers.iter_mut() {
                for x in c.iter_mut() {
                    *x += self.drift * normal(&mut rng);
                }
            }
            if rng.random::<f64>() < self.outlier_prob {
                let p = uniform_vec(&mut rng, self.dim, -self.boxsize, self.boxsize);
                return Some((p, -1));
            }
            let k = rng.random_range(0..self.sources);
            let coords: Vec<f64> = centers[k]
                .iter()
                .map(|&c| c + self.std * normal(&mut rng))
                .collect();
            // Embed into the ambient space.
            let mut p = vec![0.0; self.dim];
            for (c, b) in coords.iter().zip(basis.iter()) {
                for (pi, bi) in p.iter_mut().zip(b.iter()) {
                    *pi += c * bi;
                }
            }
            Some((p, k as i32))
        })
    }

    /// The ground-truth labels of the full stream, in order.
    pub fn labels(&self) -> Vec<i32> {
        self.labeled_iter().map(|(_, l)| l).collect()
    }

    /// A stream over the first `percent`% of this stream (the paper's
    /// prefix slicing of Spotify_Session).
    pub fn prefix(&self, percent: f64) -> DriftingStream {
        let mut s = self.clone();
        s.n = ((self.n as f64) * percent / 100.0).round() as usize;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_is_identical() {
        let s = DriftingStream {
            n: 500,
            ..Default::default()
        };
        let a: Vec<Vec<f64>> = s.iter().collect();
        let b: Vec<Vec<f64>> = s.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn prefix_is_a_prefix() {
        let s = DriftingStream {
            n: 1000,
            ..Default::default()
        };
        let full: Vec<Vec<f64>> = s.iter().collect();
        let ten: Vec<Vec<f64>> = s.prefix(10.0).iter().collect();
        assert_eq!(ten.len(), 100);
        assert_eq!(&full[..100], &ten[..]);
    }

    #[test]
    fn outlier_rate_is_respected() {
        let s = DriftingStream {
            n: 5000,
            outlier_prob: 0.1,
            ..Default::default()
        };
        let outliers = s.labels().iter().filter(|&&l| l == -1).count();
        assert!((300..700).contains(&outliers), "got {outliers}");
    }

    #[test]
    fn sources_stay_separated_under_mild_drift() {
        let s = DriftingStream {
            n: 2000,
            sources: 3,
            std: 0.3,
            drift: 0.001,
            outlier_prob: 0.0,
            ..Default::default()
        };
        // points from different sources never collide (centers 12σ apart,
        // drift negligible over 2000 steps)
        let pts: Vec<(Vec<f64>, i32)> = s.labeled_iter().collect();
        for (p, l) in &pts {
            for (q, m) in &pts {
                if l != m {
                    let d: f64 = p
                        .iter()
                        .zip(q.iter())
                        .map(|(a, b)| (a - b).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    assert!(d > 1.0, "sources {l},{m} collided at {d}");
                }
            }
        }
    }
}
