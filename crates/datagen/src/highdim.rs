//! High-dimensional unit-norm embedding mixtures — the stand-in for the
//! paper's image/text *embedding* workloads (GloVe/NYTimes-style vectors
//! where neighbors concentrate by angle, the regime `mdbscan_rp`'s random
//! projections target).

use crate::randutil::normal_vec;
use mdbscan_metric::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for [`highdim_embeddings`]. Defaults model a d=128 embedding
/// table: 10 angularly well-separated clusters plus 10 % isotropic noise.
#[derive(Debug, Clone, Copy)]
pub struct HighDimSpec {
    /// Total points, inliers + noise.
    pub n: usize,
    /// Ambient dimension (any `d ≥ 2`; the paper's embedding tables use
    /// 128–960).
    pub dim: usize,
    /// Number of mixture components.
    pub clusters: usize,
    /// Gaussian jitter scale added to the cluster direction *before*
    /// re-normalization. With `intrinsic == 0` the jitter is isotropic
    /// (per-coordinate), so members land at distance ≈ `spread · √d`
    /// from their center and pairwise distances concentrate hard (the
    /// curse of dimensionality). With `intrinsic > 0` the jitter spans
    /// only that many random directions and member offsets follow a
    /// `spread · χ(intrinsic)` profile instead — a *continuum* of
    /// distances, versus ≈ `√2` between unrelated directions.
    pub spread: f64,
    /// Intrinsic dimension of each cluster's jitter: `0` = isotropic
    /// ambient Gaussian; `k > 0` confines the jitter to `k` random unit
    /// directions per cluster. The paper's standing assumption is
    /// inliers of **low doubling dimension** inside a high ambient
    /// dimension — `intrinsic` is that knob, and it is what keeps the
    /// Algorithm-1 r̄-net (and hence every solver) small: isotropic
    /// high-d jitter degenerates the net toward one center per point.
    pub intrinsic: usize,
    /// Radial law for the intrinsic jitter. `0.0` (default) keeps the
    /// unbounded Gaussian `spread·χ(intrinsic)` profile. `q > 0` draws
    /// the offset norm as `spread · U^{1/q}` along a uniform direction
    /// of the span — a hard-edged ball of radius `spread` whose radial
    /// density scales as `r^{q-intrinsic}`: `q = intrinsic` is uniform
    /// occupancy, larger `q` shifts mass toward the rim (offsetting the
    /// ε-ball clipping a point near the edge suffers, so the local
    /// neighbor-count profile stays flat and a single MinPts threshold
    /// holds across the whole cluster — no subcritical fringe). Only
    /// meaningful with `intrinsic > 0`.
    pub radial_exponent: f64,
    /// Fraction of `n` emitted as uniform random directions labeled `-1`.
    pub noise_frac: f64,
    /// Fraction of `n` emitted as a sparse *halo* shell around the
    /// clusters, labeled `-1`: each halo point offsets a cluster center
    /// by a uniform random direction (inside the cluster's `intrinsic`
    /// span when `intrinsic > 0`) at a norm drawn from
    /// `U[halo_lo, halo_hi]` — the annular chaff that surrounds dense
    /// regions in real embedding tables (hub/anti-hub structure). Unlike
    /// uniform noise (≈ `√2` from everything), halo points sit close
    /// enough to the cluster fringe to enter every index's candidate
    /// horizon while staying too sparse to form cells of their own.
    pub halo_frac: f64,
    /// Lower edge of the halo offset-norm band (pre-normalization).
    pub halo_lo: f64,
    /// Upper edge of the halo offset-norm band (pre-normalization).
    pub halo_hi: f64,
    /// Halo direction space: `false` (default) keeps halo offsets inside
    /// the cluster's `intrinsic` span (annular chaff in the cluster's own
    /// manifold). `true` draws them from the full ambient dimension —
    /// sparse off-manifold chaff: close enough to the cluster (in chord
    /// distance) to enter candidate horizons, yet pairwise near-orthogonal
    /// to each other and to the manifold, so no two chaff points are
    /// neighbors at any radius below the band floor.
    pub halo_ambient: bool,
    /// Two-level structure: `0` = every inlier gets its own jitter draw
    /// (single-level clusters); `b > 0` groups inliers into *blobs* of
    /// `b` near-duplicates — the cluster jitter is drawn once per blob
    /// (the blob center) and members scatter isotropically around it at
    /// [`HighDimSpec::blob_spread`]. Real embedding tables have exactly
    /// this shape
    /// (crops of one image, paraphrases of one sentence — the same
    /// near-duplicate structure the paper's §5.1 `noisy_duplication`
    /// protocol models), and it splits the distance spectrum in two:
    /// an intra-blob scale far below ε and an inter-blob continuum
    /// around ε.
    pub blob_size: usize,
    /// Expected member offset norm around a blob center (the draw is
    /// isotropic ambient Gaussian scaled by `blob_spread / √dim`, so
    /// the knob reads as a distance, independent of `dim`).
    pub blob_spread: f64,
    /// Angular separation floor for cluster centers: candidate center
    /// directions are rejection-sampled until every pairwise inner
    /// product is below this (`0.5` = 60°; random directions in high `d`
    /// are nearly orthogonal, so tighter floors stay cheap to sample).
    pub max_center_dot: f64,
}

impl Default for HighDimSpec {
    fn default() -> Self {
        HighDimSpec {
            n: 20_000,
            dim: 128,
            clusters: 10,
            spread: 0.02,
            intrinsic: 0,
            radial_exponent: 0.0,
            noise_frac: 0.1,
            halo_frac: 0.0,
            halo_lo: 1.0,
            halo_hi: 1.4,
            halo_ambient: false,
            blob_size: 0,
            blob_spread: 0.02,
            max_center_dot: 0.5,
        }
    }
}

/// One cluster-jitter draw: `center + spread · g`, ambient when
/// `intrinsic == 0`, confined to the cluster's basis otherwise. Serves
/// both as an inlier (single-level mode) and as a blob center.
fn cluster_point(
    rng: &mut StdRng,
    spec: &HighDimSpec,
    center: &[f64],
    basis: &[Vec<f64>],
) -> Vec<f64> {
    if spec.intrinsic == 0 {
        let mut p = normal_vec(rng, spec.dim);
        for (x, c) in p.iter_mut().zip(center) {
            *x = c + spec.spread * *x;
        }
        p
    } else {
        let mut p = center.to_vec();
        let mut coeff: Vec<f64> = (0..spec.intrinsic)
            .map(|_| crate::randutil::normal(rng))
            .collect();
        if spec.radial_exponent > 0.0 {
            // Bounded law: uniform direction in the span at norm
            // spread·U^{1/q} (hard edge at `spread`).
            let norm = coeff.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-12);
            let u: f64 = rng.random_range(0.0..1.0);
            let r = spec.spread * u.powf(1.0 / spec.radial_exponent);
            for a in &mut coeff {
                *a *= r / norm;
            }
        } else {
            for a in &mut coeff {
                *a *= spec.spread;
            }
        }
        for (b, a) in basis.iter().zip(&coeff) {
            for (x, bx) in p.iter_mut().zip(b) {
                *x += a * bx;
            }
        }
        p
    }
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Deterministic unit-norm Gaussian-mixture embeddings.
///
/// Cluster centers are random unit directions, rejection-sampled so every
/// pair satisfies `⟨cᵢ, cⱼ⟩ < max_center_dot` (in high `d` random
/// directions are nearly orthogonal, so rejections are rare).
/// Inliers are assigned round-robin and drawn as
/// `normalize(center + spread · g)` with `g` standard normal — ambient
/// when `intrinsic == 0`, confined to the cluster's `intrinsic` random
/// directions otherwise. After the inliers come `⌊n · halo_frac⌋` halo
/// points (sparse annular shells around the clusters) and
/// `⌊n · noise_frac⌋` uniform random directions, both labeled `-1`.
///
/// Identical `(spec, seed)` → identical dataset, on every platform.
pub fn highdim_embeddings(spec: HighDimSpec, seed: u64) -> Dataset<Vec<f64>> {
    assert!(spec.dim >= 2, "highdim_embeddings requires dim >= 2");
    assert!(
        spec.clusters > 0,
        "highdim_embeddings requires clusters > 0"
    );
    assert!(
        (0.0..1.0).contains(&spec.noise_frac),
        "noise_frac must be in [0, 1)"
    );
    assert!(
        (0.0..1.0).contains(&spec.halo_frac) && spec.noise_frac + spec.halo_frac < 1.0,
        "noise_frac + halo_frac must be in [0, 1)"
    );
    assert!(
        spec.halo_frac == 0.0 || (spec.halo_lo > 0.0 && spec.halo_hi >= spec.halo_lo),
        "halo band requires 0 < halo_lo <= halo_hi"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(spec.clusters);
    let mut attempts = 0usize;
    while centers.len() < spec.clusters {
        attempts += 1;
        let c = normalize(normal_vec(&mut rng, spec.dim));
        let ok = attempts > 2000
            || centers
                .iter()
                .all(|o| c.iter().zip(o).map(|(a, b)| a * b).sum::<f64>() < spec.max_center_dot);
        if ok {
            centers.push(c);
        }
    }

    // Per-cluster jitter bases for the low-doubling-dimension mode
    // (random unit directions; nearly orthogonal in high d).
    let bases: Vec<Vec<Vec<f64>>> = (0..spec.clusters)
        .map(|_| {
            (0..spec.intrinsic)
                .map(|_| normalize(normal_vec(&mut rng, spec.dim)))
                .collect()
        })
        .collect();

    let n_noise = (spec.n as f64 * spec.noise_frac) as usize;
    let n_halo = (spec.n as f64 * spec.halo_frac) as usize;
    let n_inliers = spec.n - n_noise - n_halo;

    // Two-level mode: draw the cluster jitter once per blob up front;
    // members then scatter isotropically around their blob center.
    let blob_centers: Vec<Vec<Vec<f64>>> = if spec.blob_size == 0 {
        Vec::new()
    } else {
        (0..spec.clusters)
            .map(|k| {
                let count_k =
                    n_inliers / spec.clusters + usize::from(k < n_inliers % spec.clusters);
                let blobs_k = count_k.div_ceil(spec.blob_size);
                (0..blobs_k)
                    .map(|_| cluster_point(&mut rng, &spec, &centers[k], &bases[k]))
                    .collect()
            })
            .collect()
    };

    let mut points = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..n_inliers {
        let k = i % spec.clusters;
        let p = match (i / spec.clusters).checked_div(spec.blob_size) {
            None => cluster_point(&mut rng, &spec, &centers[k], &bases[k]),
            Some(blob) => {
                let sd = spec.blob_spread / (spec.dim as f64).sqrt();
                let mut p = blob_centers[k][blob].clone();
                for (x, g) in p.iter_mut().zip(normal_vec(&mut rng, spec.dim)) {
                    *x += sd * g;
                }
                p
            }
        };
        points.push(normalize(p));
        labels.push(k as i32);
    }
    for i in 0..n_halo {
        let k = i % spec.clusters;
        // Uniform direction (within the cluster's intrinsic span when
        // one exists) at a uniform offset norm in [halo_lo, halo_hi].
        let w = if spec.intrinsic == 0 || spec.halo_ambient {
            normalize(normal_vec(&mut rng, spec.dim))
        } else {
            let mut w = vec![0.0; spec.dim];
            for b in &bases[k] {
                let a = crate::randutil::normal(&mut rng);
                for (x, bx) in w.iter_mut().zip(b) {
                    *x += a * bx;
                }
            }
            normalize(w)
        };
        let t = spec.halo_lo + (spec.halo_hi - spec.halo_lo) * rng.random_range(0.0..1.0);
        let p: Vec<f64> = centers[k]
            .iter()
            .zip(&w)
            .map(|(c, wx)| c + t * wx)
            .collect();
        points.push(normalize(p));
        labels.push(-1);
    }
    for _ in 0..n_noise {
        points.push(normalize(normal_vec(&mut rng, spec.dim)));
        labels.push(-1);
    }

    Dataset::with_labels("highdim_embeddings", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_shape() {
        let spec = HighDimSpec {
            n: 500,
            ..HighDimSpec::default()
        };
        let ds = highdim_embeddings(spec, 7);
        assert_eq!(ds.points().len(), 500);
        assert_eq!(ds.labels().unwrap().len(), 500);
        assert!(ds.points().iter().all(|p| p.len() == 128));
    }

    #[test]
    fn points_are_unit_norm() {
        let spec = HighDimSpec {
            n: 200,
            dim: 64,
            ..HighDimSpec::default()
        };
        let ds = highdim_embeddings(spec, 3);
        for p in ds.points() {
            let norm = p.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = HighDimSpec {
            n: 300,
            dim: 32,
            ..HighDimSpec::default()
        };
        let a = highdim_embeddings(spec, 11);
        let b = highdim_embeddings(spec, 11);
        assert_eq!(a.points(), b.points());
        assert_eq!(a.labels(), b.labels());
        let c = highdim_embeddings(spec, 12);
        assert_ne!(a.points(), c.points());
    }

    #[test]
    fn noise_fraction_is_respected() {
        let spec = HighDimSpec {
            n: 1000,
            dim: 16,
            noise_frac: 0.2,
            ..HighDimSpec::default()
        };
        let ds = highdim_embeddings(spec, 5);
        let noise = ds.labels().unwrap().iter().filter(|&&l| l == -1).count();
        assert_eq!(noise, 200);
    }

    #[test]
    fn intrinsic_jitter_stays_near_center_plane() {
        // With intrinsic=3 the offset follows spread·χ(3), far below the
        // isotropic spread·√d profile at the same spread.
        let spec = HighDimSpec {
            n: 400,
            dim: 256,
            clusters: 4,
            spread: 0.1,
            intrinsic: 3,
            noise_frac: 0.0,
            ..HighDimSpec::default()
        };
        let ds = highdim_embeddings(spec, 9);
        // Round-robin assignment: points 0 and 4 share cluster 0.
        let a = &ds.points()[0];
        let b = &ds.points()[4];
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        // χ(3) offsets: pairwise distance ~ 0.1·χ(6) ≲ 1, while two
        // isotropic points at spread 0.1, d=256 would sit ≈ 2.2 apart
        // (pre-normalization) and ≈ √2 after.
        assert!(d2.sqrt() < 1.0, "intra-cluster distance {}", d2.sqrt());
    }

    #[test]
    fn halo_points_sit_in_the_requested_band() {
        let spec = HighDimSpec {
            n: 1000,
            dim: 64,
            clusters: 4,
            spread: 0.2,
            intrinsic: 3,
            noise_frac: 0.0,
            halo_frac: 0.3,
            halo_lo: 1.0,
            halo_hi: 1.3,
            ..HighDimSpec::default()
        };
        let ds = highdim_embeddings(spec, 21);
        let labels = ds.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 300);
        // Halo points follow the inliers: indices [700, 1000). Each is
        // normalize(c + t·w) with ‖w‖ = 1 and t ∈ [1.0, 1.3], so its
        // angle to some unit center is atan(t) ∈ [45°, 52.4°] and the
        // cosine (= dot, both unit norm) lands in [cos 52.4°, cos 45°].
        // Estimate each true center as the normalized mean of the
        // cluster's inliers (round-robin assignment: inlier i belongs
        // to cluster i % 4).
        let centers: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                let mut mean = vec![0.0; 64];
                for i in (k..700).step_by(4) {
                    for (m, x) in mean.iter_mut().zip(&ds.points()[i]) {
                        *m += x;
                    }
                }
                normalize(mean)
            })
            .collect();
        for p in &ds.points()[700..1000] {
            let best = centers
                .iter()
                .map(|c| c.iter().zip(p).map(|(a, b)| a * b).sum::<f64>())
                .fold(f64::MIN, f64::max);
            // Ideal cosine band is [cos 52.4°, cos 45°] = [0.61, 0.71],
            // but at d = 64 the halo direction is only approximately
            // orthogonal to the center (⟨w, c⟩ ≈ ±d^{-1/2}), so allow
            // slack. The point is that halo sits near a cluster (≫ the
            // ≈ 0 dot of uniform noise) yet clearly off its core (≪ an
            // inlier's ≈ 0.95+).
            assert!(best > 0.4 && best < 0.85, "halo alignment {best}");
        }
    }

    #[test]
    fn blob_members_are_near_duplicates() {
        let spec = HighDimSpec {
            n: 800,
            dim: 64,
            clusters: 4,
            spread: 0.3,
            intrinsic: 3,
            noise_frac: 0.0,
            blob_size: 10,
            blob_spread: 0.01,
            ..HighDimSpec::default()
        };
        let ds = highdim_embeddings(spec, 17);
        let dist = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // Round-robin over 4 clusters, blobs of 10 within each cluster:
        // inliers 0 and 4 share cluster 0's blob 0; two members sit
        // ≈ blob_spread·√2 apart, far below the spread·χ(3) inter-blob
        // scale. Inlier i = 4·10·4 = 160 opens cluster 0's blob 4.
        let same_blob = dist(&ds.points()[0], &ds.points()[4]);
        assert!(same_blob < 0.05, "same-blob distance {same_blob}");
        let cross_blob = dist(&ds.points()[0], &ds.points()[160]);
        assert!(cross_blob > 0.05, "cross-blob distance {cross_blob}");
    }

    #[test]
    #[should_panic(expected = "dim >= 2")]
    fn rejects_dim_one() {
        highdim_embeddings(
            HighDimSpec {
                dim: 1,
                ..HighDimSpec::default()
            },
            0,
        );
    }
}
