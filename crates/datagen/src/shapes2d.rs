//! Classic 2-D shape benchmarks: arbitrary-shape clusters that
//! center-based algorithms (k-means, DP-means) butcher and density-based
//! ones recover — the motivating examples of the paper's Figure 5.

use mdbscan_metric::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::randutil::normal;

/// Two interleaving half-moons with Gaussian noise — the construction of
/// scikit-learn's `make_moons`, which is the paper's "Moons" dataset.
/// `noise_frac` of additional uniform outliers (label `-1`) are scattered
/// over an enclosing box.
pub fn moons(n: usize, noise_std: f64, noise_frac: f64, seed: u64) -> Dataset<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let half = n / 2;
    for i in 0..n {
        let (cx, cy, flip, label) = if i < half {
            (0.0, 0.0, 1.0, 0)
        } else {
            (1.0, 0.5, -1.0, 1)
        };
        let t = std::f64::consts::PI * rng.random::<f64>();
        points.push(vec![
            cx + flip * t.cos() + noise_std * normal(&mut rng),
            cy + flip * t.sin() + noise_std * normal(&mut rng),
        ]);
        labels.push(label);
    }
    let outliers = ((n as f64) * noise_frac) as usize;
    for _ in 0..outliers {
        points.push(vec![
            rng.random_range(-3.0..4.0),
            rng.random_range(-3.0..3.5),
        ]);
        labels.push(-1);
    }
    Dataset::with_labels("moons", points, labels)
}

/// Two concentric circles (inner radius `0.5`, outer `1.0`) with Gaussian
/// noise — scikit-learn's `make_circles`.
pub fn circles(n: usize, noise_std: f64, seed: u64) -> Dataset<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let (r, label) = if i % 2 == 0 { (1.0, 0) } else { (0.5, 1) };
        let t = std::f64::consts::TAU * rng.random::<f64>();
        points.push(vec![
            r * t.cos() + noise_std * normal(&mut rng),
            r * t.sin() + noise_std * normal(&mut rng),
        ]);
        labels.push(label);
    }
    Dataset::with_labels("circles", points, labels)
}

/// A banana-shaped cluster next to a round blob (the Fig. 5 example shape),
/// plus uniform outliers.
pub fn banana(n: usize, noise_frac: f64, seed: u64) -> Dataset<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::new();
    let mut labels = Vec::new();
    let per = n / 2;
    // banana: arc of 270 degrees, thickened
    for _ in 0..per {
        let t = 1.5 * std::f64::consts::PI * rng.random::<f64>();
        let r = 2.5 + 0.15 * normal(&mut rng);
        points.push(vec![r * t.cos(), r * t.sin()]);
        labels.push(0);
    }
    // blob in the arc's mouth, > 1 unit of clearance from the arc so the
    // ρ-relaxed merge radius (up to ~2ε) cannot bridge the gap
    for _ in 0..(n - per) {
        points.push(vec![
            0.6 + 0.2 * normal(&mut rng),
            -0.6 + 0.2 * normal(&mut rng),
        ]);
        labels.push(1);
    }
    let outliers = ((n as f64) * noise_frac) as usize;
    for _ in 0..outliers {
        points.push(vec![
            rng.random_range(-6.0..6.0),
            rng.random_range(-6.0..6.0),
        ]);
        labels.push(-1);
    }
    Dataset::with_labels("banana", points, labels)
}

/// A CLUTO-t4-like composition: several parametric strokes (line, sine
/// wave, two disks) of varying density, immersed in uniform background
/// noise — the stress shape for arbitrary-geometry density clustering.
pub fn cluto_like(n: usize, noise_frac: f64, seed: u64) -> Dataset<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::new();
    let mut labels = Vec::new();
    let per = n / 4;
    // diagonal stroke
    for _ in 0..per {
        let t = rng.random::<f64>();
        points.push(vec![
            10.0 * t + 0.2 * normal(&mut rng),
            10.0 * t + 0.2 * normal(&mut rng),
        ]);
        labels.push(0);
    }
    // sine wave
    for _ in 0..per {
        let t = rng.random::<f64>();
        points.push(vec![
            10.0 * t + 0.2 * normal(&mut rng),
            8.0 + 2.0 * (t * std::f64::consts::TAU).sin() + 0.2 * normal(&mut rng),
        ]);
        labels.push(1);
    }
    // two disks
    for k in 0..2 {
        let (cx, cy) = if k == 0 { (2.0, -4.0) } else { (8.0, -4.0) };
        for _ in 0..(n - 2 * per) / 2 {
            let t = std::f64::consts::TAU * rng.random::<f64>();
            let r = 1.2 * rng.random::<f64>().sqrt();
            points.push(vec![cx + r * t.cos(), cy + r * t.sin()]);
            labels.push(2 + k);
        }
    }
    let outliers = ((n as f64) * noise_frac) as usize;
    for _ in 0..outliers {
        points.push(vec![
            rng.random_range(-2.0..12.0),
            rng.random_range(-7.0..12.0),
        ]);
        labels.push(-1);
    }
    Dataset::with_labels("cluto", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{validate_vectors, Euclidean, Metric};

    #[test]
    fn moons_shape_and_labels() {
        let ds = moons(400, 0.05, 0.05, 7);
        assert_eq!(ds.len(), 400 + 20);
        validate_vectors(ds.points()).unwrap();
        let labels = ds.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 200);
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 20);
        // moons live roughly in [-1.5, 2.5] x [-1.5, 1.5]
        for (p, &l) in ds.points().iter().zip(labels) {
            if l >= 0 {
                assert!(p[0].abs() < 3.0 && p[1].abs() < 3.0);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            moons(100, 0.1, 0.1, 3).points(),
            moons(100, 0.1, 0.1, 3).points()
        );
        assert_eq!(circles(100, 0.1, 3).points(), circles(100, 0.1, 3).points());
        assert_eq!(banana(100, 0.1, 3).points(), banana(100, 0.1, 3).points());
        assert_eq!(
            cluto_like(100, 0.1, 3).points(),
            cluto_like(100, 0.1, 3).points()
        );
        assert_ne!(
            moons(100, 0.1, 0.1, 3).points(),
            moons(100, 0.1, 0.1, 4).points()
        );
    }

    #[test]
    fn circles_have_two_radii() {
        let ds = circles(600, 0.01, 1);
        let labels = ds.labels().unwrap();
        for (p, &l) in ds.points().iter().zip(labels) {
            let r = Euclidean.distance(p, &vec![0.0, 0.0]);
            if l == 0 {
                assert!((r - 1.0).abs() < 0.15, "outer point at r={r}");
            } else {
                assert!((r - 0.5).abs() < 0.15, "inner point at r={r}");
            }
        }
    }

    #[test]
    fn cluto_has_four_clusters_plus_noise() {
        let ds = cluto_like(1000, 0.1, 5);
        let labels = ds.labels().unwrap();
        let distinct: std::collections::HashSet<i32> = labels.iter().copied().collect();
        assert!(distinct.contains(&-1));
        assert_eq!(distinct.iter().filter(|&&l| l >= 0).count(), 4);
        validate_vectors(ds.points()).unwrap();
    }

    #[test]
    fn banana_is_two_clusters() {
        let ds = banana(500, 0.02, 2);
        let labels = ds.labels().unwrap();
        let distinct: std::collections::HashSet<i32> =
            labels.iter().copied().filter(|&l| l >= 0).collect();
        assert_eq!(distinct.len(), 2);
    }
}
