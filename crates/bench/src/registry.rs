//! The dataset registry: every Table 1 dataset class, mapped to its
//! synthetic stand-in with paper-matched `(n, d)` shape (scaled down by
//! default — the `--full` flag restores paper-order sizes) and a
//! per-dataset base `ε₀` at which the planted clusters are recoverable,
//! so the harness can sweep `ε` around it exactly like Fig. 3 does.

use mdbscan_datagen::{
    blobs, cluto_like, manifold_clusters, moons, noisy_duplication, string_clusters, BlobSpec,
    DriftingStream, ManifoldSpec, StringSpec,
};
use mdbscan_metric::Dataset;

use crate::HarnessArgs;

/// A vector dataset plus the harness metadata attached to it.
pub struct VecEntry {
    /// The generated dataset (points + ground truth).
    pub data: Dataset<Vec<f64>>,
    /// Registry name (matches the paper's dataset it stands in for).
    pub name: &'static str,
    /// Dataset class (the Fig. 3 row it belongs to).
    pub class: Class,
    /// Base ε at which the planted structure is recoverable.
    pub eps0: f64,
    /// Ambient dimension.
    pub dim: usize,
}

/// A string dataset entry (edit-distance panels).
pub struct StrEntry {
    /// The generated dataset.
    pub data: Dataset<String>,
    /// Registry name.
    pub name: &'static str,
    /// Base ε (in edit-distance units).
    pub eps0: f64,
}

/// Fig. 3 row classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Row 1: low/medium-dimensional Euclidean.
    LowDim,
    /// Row 2: high-dimensional, low intrinsic dimension.
    HighDim,
    /// Row 4: large-scale.
    Large,
}

/// Row 1 stand-ins: Moons (2-d), Cancer (32-d), Arrhythmia (262-d),
/// Biodeg (41-d).
pub fn low_dim_suite(args: &HarnessArgs) -> Vec<VecEntry> {
    vec![
        VecEntry {
            data: moons(args.sized(2000), 0.06, 0.02, args.seed),
            name: "Moons",
            class: Class::LowDim,
            eps0: 0.12,
            dim: 2,
        },
        VecEntry {
            data: blobs(
                &BlobSpec {
                    n: args.sized(569),
                    dim: 32,
                    clusters: 2,
                    std: 1.0,
                    center_box: 25.0,
                    outlier_frac: 0.01,
                },
                args.seed + 1,
            ),
            name: "Cancer",
            class: Class::LowDim,
            eps0: 8.5, // intra-cluster distances concentrate at √(2·32) ≈ 8.0
            dim: 32,
        },
        VecEntry {
            data: blobs(
                &BlobSpec {
                    n: args.sized(452),
                    dim: 262,
                    clusters: 3,
                    std: 1.0,
                    center_box: 40.0,
                    outlier_frac: 0.01,
                },
                args.seed + 2,
            ),
            name: "Arrhythmia",
            class: Class::LowDim,
            eps0: 24.0, // √(2·262) ≈ 22.9
            dim: 262,
        },
        VecEntry {
            data: blobs(
                &BlobSpec {
                    n: args.sized(1055),
                    dim: 41,
                    clusters: 2,
                    std: 1.0,
                    center_box: 25.0,
                    outlier_frac: 0.01,
                },
                args.seed + 3,
            ),
            name: "Biodeg",
            class: Class::LowDim,
            eps0: 9.5, // √(2·41) ≈ 9.1
            dim: 41,
        },
    ]
}

fn image_like(
    args: &HarnessArgs,
    name: &'static str,
    base_n: usize,
    dim: usize,
    seed_off: u64,
) -> VecEntry {
    // The paper's §5.1 protocol (footnote 2): sample base points, then
    // duplicate each 10× with small per-coordinate noise and add 1 %
    // ambient outliers — this densification is what gives the image sets
    // their compressible r̄-net structure (Fig. 6's ≈1 % memory).
    let spec = ManifoldSpec {
        n: args.sized(base_n) / 10,
        ambient_dim: dim,
        intrinsic_dim: 6,
        clusters: 10,
        std: 1.0,
        center_box: 40.0,
        outlier_frac: 0.0,
        ambient_box: 60.0,
    };
    let base = manifold_clusters(&spec, args.seed + seed_off);
    // noise amplitude: copy-cloud radius ≈ 0.4 « ε₀
    let noise = 0.4 / (dim as f64 / 3.0).sqrt();
    let mut data = noisy_duplication(&base, 10, noise, 0.01, -60.0, 60.0, args.seed + seed_off);
    data = Dataset::with_labels(
        name,
        data.points().to_vec(),
        data.labels().unwrap().to_vec(),
    );
    VecEntry {
        data,
        name,
        class: Class::HighDim,
        eps0: 4.0,
        dim,
    }
}

/// Row 2 stand-ins: MNIST (784-d), Fashion MNIST (784-d), USPS HW (256-d),
/// CIFAR 10 (3072-d) — the paper's §5.1 protocol: low intrinsic dimension
/// in huge ambient dimension, 1 % ambient outliers.
pub fn high_dim_suite(args: &HarnessArgs) -> Vec<VecEntry> {
    vec![
        image_like(args, "MNIST", 1000, 784, 10),
        image_like(args, "FashionMNIST", 1000, 784, 11),
        image_like(args, "USPS_HW", 1000, 256, 12),
        image_like(args, "CIFAR10", 600, 3072, 13),
    ]
}

/// Row 3 stand-ins: COLA, AG News, MRPC, MNLI under edit distance.
pub fn text_suite(args: &HarnessArgs) -> Vec<StrEntry> {
    let mk = |name: &'static str, n: usize, clusters: usize, seed_off: u64| StrEntry {
        data: string_clusters(
            &StringSpec {
                n: args.sized(n),
                clusters,
                seed_len: 24,
                max_edits: 3,
                outlier_frac: 0.02,
                ..Default::default()
            },
            args.seed + seed_off,
        ),
        name,
        eps0: 6.0,
    };
    vec![
        mk("COLA", 515, 4, 20),
        mk("AGNews", 1200, 4, 21),
        mk("MRPC", 900, 6, 22),
        mk("MNLI", 1500, 8, 23),
    ]
}

/// Row 4 stand-ins: GloVe25 (25-d), SIFT (128-d), GIST (960-d), DEEP1B
/// (96-d) at reduced `n` (the `--full` flag multiplies by 10; the paper's
/// absolute sizes are out of laptop scope — DESIGN.md §3).
pub fn large_suite(args: &HarnessArgs) -> Vec<VecEntry> {
    let mk = |name: &'static str, base_n: usize, dim: usize, seed_off: u64| VecEntry {
        data: manifold_clusters(
            &ManifoldSpec {
                n: args.sized(base_n),
                ambient_dim: dim,
                intrinsic_dim: 6,
                clusters: 20,
                std: 1.0,
                center_box: 80.0,
                outlier_frac: 0.005,
                ambient_box: 120.0,
            },
            args.seed + seed_off,
        ),
        name,
        class: Class::Large,
        eps0: 4.0,
        dim,
    };
    vec![
        mk("GloVe25", 20_000, 25, 30),
        mk("SIFT", 10_000, 128, 31),
        mk("GIST", 4_000, 960, 32),
        mk("DEEP1B", 10_000, 96, 33),
    ]
}

/// Table 3/4 extras: PCAM-like (1024-d) and LSUN-like (1024-d).
pub fn pcam_lsun(args: &HarnessArgs) -> Vec<VecEntry> {
    vec![
        image_like(args, "PCAM", 800, 1024, 40),
        image_like(args, "LSUN", 800, 1024, 41),
    ]
}

/// Fig. 5 / Table 3 2-D shape sets.
pub fn shape_suite(args: &HarnessArgs) -> Vec<VecEntry> {
    vec![
        VecEntry {
            data: moons(args.sized(2000), 0.06, 0.02, args.seed),
            name: "Moons",
            class: Class::LowDim,
            eps0: 0.12,
            dim: 2,
        },
        VecEntry {
            data: cluto_like(args.sized(2000), 0.05, args.seed + 50),
            name: "Cluto",
            class: Class::LowDim,
            eps0: 0.45,
            dim: 2,
        },
    ]
}

/// The §5.1 noisy-duplication variants of a base image-like dataset.
pub fn noisy_variant(args: &HarnessArgs, base: &VecEntry, seed_off: u64) -> VecEntry {
    // Scale the base down so copies×base ≈ the original size.
    let small = HarnessArgs {
        scale: args.scale / 10.0,
        ..*args
    };
    let inner = image_like(&small, base.name, 1000, base.dim, seed_off);
    // Per-coordinate noise amplitude chosen so the *norm* of the noise
    // vector (≈ a·√(d/3)) is a fixed fraction of ε₀ — the paper's U[−5,5]
    // on [0,255]^d pixels has the same "small relative to ε" property.
    let noise = 1.5 / (base.dim as f64 / 3.0).sqrt();
    VecEntry {
        data: noisy_duplication(
            &inner.data,
            10,
            noise,
            0.01,
            -60.0,
            60.0,
            args.seed + seed_off,
        ),
        name: match base.name {
            "MNIST" => "MNIST_noisy",
            "FashionMNIST" => "Fashion_noisy",
            _ => "noisy",
        },
        class: Class::HighDim,
        // duplication inflates pairwise distances to √(ε₀² + 2·‖noise‖²)
        eps0: (base.eps0 * base.eps0 + 2.0 * 1.5 * 1.5).sqrt(),
        dim: base.dim,
    }
}

/// The Spotify_Session stand-in (drifting stream).
pub fn session_stream(args: &HarnessArgs) -> DriftingStream {
    DriftingStream {
        n: args.sized(20_000),
        dim: 21,
        intrinsic_dim: 4,
        sources: 6,
        std: 0.6,
        drift: 0.0005,
        outlier_prob: 0.01,
        boxsize: 80.0,
        seed: args.seed + 60,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessArgs {
        HarnessArgs {
            seed: 1,
            scale: 0.05,
            full: false,
        }
    }

    #[test]
    fn suites_generate_with_ground_truth() {
        let args = tiny();
        for e in low_dim_suite(&args)
            .into_iter()
            .chain(high_dim_suite(&args))
            .chain(shape_suite(&args))
            .chain(pcam_lsun(&args))
        {
            assert!(e.data.len() >= 10, "{}", e.name);
            assert!(e.data.labels().is_some(), "{}", e.name);
            assert_eq!(e.data.points()[0].len(), e.dim, "{}", e.name);
            assert!(e.eps0 > 0.0);
        }
        for e in text_suite(&args) {
            assert!(e.data.len() >= 10, "{}", e.name);
            assert!(e.eps0 > 0.0);
        }
    }

    #[test]
    fn stream_prefixes_work() {
        let args = tiny();
        let s = session_stream(&args);
        assert_eq!(s.prefix(10.0).iter().count(), s.n / 10);
    }

    #[test]
    fn noisy_variant_has_copies() {
        let args = HarnessArgs {
            seed: 1,
            scale: 0.1,
            full: false,
        };
        let base = &high_dim_suite(&args)[0];
        let noisy = noisy_variant(&args, base, 70);
        assert!(noisy.name.contains("noisy"));
        assert!(noisy.data.len() >= 100);
    }
}
