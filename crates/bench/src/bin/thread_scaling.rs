//! Thread-scaling report for the exact and ρ-approximate pipelines:
//! solves one ≥100k-point blob set at 1/2/4/8 worker threads, checks
//! the labels are byte-identical to the 1-thread run, and prints one
//! JSON object (BENCH_thread_scaling.json shape) with wall-clock and
//! distance-evaluation counts per thread setting.
//!
//! It additionally writes `BENCH_distance_evals.json` — the pruning
//! baseline: per solver (exact / approx / covertree / streaming) and per
//! pruning setting, the wall-clock, the distance-evaluation count, and
//! the bound-accept/reject/anchor counters — asserting along the way
//! that labels are byte-identical with pruning on vs off and that the
//! counters are self-consistent. CI runs this at a tiny `--scale` as a
//! smoke test of the whole distance-minimization layer.
//!
//! `--scale 0.1` shrinks the dataset for smoke runs; `--full` runs the
//! million-point panel regardless of `--scale`.

use mdbscan_bench::{timed, HarnessArgs};
use mdbscan_core::{
    ApproxParams, Clustering, DbscanParams, ExactConfig, MetricDbscan, ParallelConfig,
    Run as EngineRun,
};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::{CountingMetric, Euclidean, PruneStats, PruningConfig};

const EPS: f64 = 1.0;
const MIN_PTS: usize = 10;
const RHO: f64 = 0.5;

struct Run {
    threads: usize,
    build_ms: f64,
    exact_ms: f64,
    approx_ms: f64,
    distance_evals: u64,
    labels_match: bool,
}

fn solve(
    pts: &[Vec<f64>],
    threads: usize,
    count: bool,
) -> (Clustering, Clustering, f64, f64, f64, u64) {
    let parallel = ParallelConfig::new(threads);
    let owned = pts.to_vec();
    let (engine, build_ms) = timed(move || {
        MetricDbscan::builder(owned, Euclidean)
            .rbar(RHO * EPS / 2.0)
            .parallel(parallel)
            .build()
            .expect("build engine")
    });
    let cfg = ExactConfig {
        parallel,
        count_distance_evals: count,
        ..ExactConfig::default()
    };
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let (exact_run, exact_ms) = timed(|| engine.exact_with(&params, &cfg).expect("exact query"));
    let distance_evals = exact_run
        .report
        .exact_stats()
        .expect("exact run carries stats")
        .distance_evals;
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    let (approx_run, approx_ms) = timed(|| engine.approx(&aparams).expect("approx query"));
    (
        exact_run.clustering,
        approx_run.clustering,
        build_ms,
        exact_ms,
        approx_ms,
        distance_evals,
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let n = if args.full {
        1_000_000
    } else {
        (100_000.0 * args.scale) as usize
    };
    let pts = blobs(
        &BlobSpec {
            n,
            dim: 2,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
        },
        args.seed,
    )
    .into_parts()
    .0;

    let (base_exact, base_approx, ..) = solve(&pts, 1, false);
    let mut runs: Vec<Run> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        // Timed pass without counting (the counter atomic is contended);
        // separate counted pass for the work numbers.
        let (exact, approx, build_ms, exact_ms, approx_ms, _) = solve(&pts, threads, false);
        let (_, _, _, _, _, distance_evals) = solve(&pts, threads, true);
        runs.push(Run {
            threads,
            build_ms,
            exact_ms,
            approx_ms,
            distance_evals,
            labels_match: exact.labels() == base_exact.labels()
                && approx.labels() == base_approx.labels(),
        });
    }

    let t1_total = runs[0].build_ms + runs[0].exact_ms;
    println!("{{");
    println!("  \"bench\": \"thread_scaling\",");
    println!("  \"n\": {n},");
    println!("  \"eps\": {EPS},");
    println!("  \"min_pts\": {MIN_PTS},");
    println!(
        "  \"available_parallelism\": {},",
        ParallelConfig::available()
    );
    println!("  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let total = r.build_ms + r.exact_ms;
        let sep = if i + 1 == runs.len() { "" } else { "," };
        println!(
            "    {{\"threads\": {}, \"build_ms\": {:.2}, \"exact_ms\": {:.2}, \"approx_ms\": {:.2}, \"total_ms\": {:.2}, \"speedup_vs_1t\": {:.3}, \"distance_evals\": {}, \"labels_match_1t\": {}}}{sep}",
            r.threads, r.build_ms, r.exact_ms, r.approx_ms, total, t1_total / total,
            r.distance_evals, r.labels_match,
        );
    }
    println!("  ]");
    println!("}}");
    assert!(
        runs.iter().all(|r| r.labels_match),
        "cluster labels diverged across thread counts"
    );

    write_distance_evals_baseline(&pts, n);
}

/// One row of the pruning baseline.
struct EvalRow {
    solver: &'static str,
    pruning: bool,
    wall_ms: f64,
    distance_evals: u64,
    bounds: PruneStats,
}

/// Runs every solver with pruning on and off over a `CountingMetric`,
/// asserts the labels are byte-identical and the counters sane, and
/// writes `BENCH_distance_evals.json`.
fn write_distance_evals_baseline(pts: &[Vec<f64>], n: usize) {
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let mut rows: Vec<EvalRow> = Vec::new();
    let mut labels: std::collections::HashMap<(&'static str, bool), Clustering> =
        std::collections::HashMap::new();
    for pruning_on in [false, true] {
        let pruning = if pruning_on {
            PruningConfig::default()
        } else {
            PruningConfig::off()
        };
        // cache_capacity(0): every query recomputes, so the counters
        // compare like for like between the two settings.
        let engine = MetricDbscan::builder(pts.to_vec(), CountingMetric::new(Euclidean))
            .rbar(RHO * EPS / 2.0)
            .pruning(pruning)
            .cache_capacity(0)
            .build()
            .expect("build engine");
        let mut record = |solver: &'static str, run: EngineRun, wall_ms: f64, evals: u64| {
            let bounds = run.report.pruning;
            rows.push(EvalRow {
                solver,
                pruning: pruning_on,
                wall_ms,
                distance_evals: evals,
                bounds,
            });
            labels.insert((solver, pruning_on), run.clustering);
        };
        engine.metric().reset();
        let (run, ms) = timed(|| engine.exact(&params).expect("exact"));
        record("exact", run, ms, engine.metric().reset());
        let (run, ms) = timed(|| engine.approx(&aparams).expect("approx"));
        record("approx", run, ms, engine.metric().reset());
        let (run, ms) = timed(|| engine.covertree(&params).expect("covertree"));
        record("covertree", run, ms, engine.metric().reset());
        let (run, ms) = timed(|| engine.streaming(&aparams).expect("streaming"));
        record("streaming", run, ms, engine.metric().reset());
    }

    // Self-consistency: identical labels per solver, zeroed counters
    // with pruning off, live counters (and no extra work) with it on.
    for solver in ["exact", "approx", "covertree", "streaming"] {
        assert_eq!(
            labels[&(solver, false)],
            labels[&(solver, true)],
            "{solver}: pruning changed the labels"
        );
        let off = rows
            .iter()
            .find(|r| r.solver == solver && !r.pruning)
            .expect("off row");
        let on = rows
            .iter()
            .find(|r| r.solver == solver && r.pruning)
            .expect("on row");
        assert_eq!(
            off.bounds,
            PruneStats::default(),
            "{solver}: pruning-off must report zero bound counters"
        );
        assert!(
            on.bounds.bound_accepts + on.bounds.bound_rejects > 0,
            "{solver}: bounds never fired on clustered data"
        );
        if solver == "exact" || solver == "approx" {
            assert!(
                on.distance_evals <= off.distance_evals,
                "{solver}: pruning increased evals ({} vs {})",
                on.distance_evals,
                off.distance_evals
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"distance_evals\",\n");
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!(
        "  \"eps\": {EPS}, \"min_pts\": {MIN_PTS}, \"rho\": {RHO},\n"
    ));
    json.push_str("  \"solvers\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"solver\": \"{}\", \"pruning\": {}, \"wall_ms\": {:.2}, \"distance_evals\": {}, \"bound_accepts\": {}, \"bound_rejects\": {}, \"anchor_evals\": {}, \"distance_evals_saved\": {}}}{sep}\n",
            r.solver,
            r.pruning,
            r.wall_ms,
            r.distance_evals,
            r.bounds.bound_accepts,
            r.bounds.bound_rejects,
            r.bounds.anchor_evals,
            r.bounds.distance_evals_saved(),
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    mdbscan_bench::write_json("BENCH_distance_evals.json", &json);
    eprintln!(
        "wrote BENCH_distance_evals.json ({} solver rows)",
        rows.len()
    );
}
