//! Observability overhead: the cost of tracing must be noise.
//!
//! Builds fresh n≈10k engines with a no-op recorder and with a real
//! `MetricsRecorder`, runs the exact and streaming paths, and writes
//! `BENCH_obs.json` with min-of-repeats wall clock for both modes.
//! At `--scale` ≥ 1 the headline is asserted: recorder-on overhead
//! ≤ 3 % on both paths. Always asserted, at any scale:
//!
//! * labels are bit-identical recorder-on vs no-op (the read-only
//!   contract, at bench scale);
//! * all five pipeline phases (net build, Step 1, adjacency, Step 2,
//!   Step 3) populated their latency histograms;
//! * every histogram snapshot is self-consistent (Σ buckets = count).
//!
//! CI runs this at a reduced `--scale` and smoke-parses the JSON.

use std::sync::Arc;

use mdbscan_bench::{timed, HarnessArgs};
use mdbscan_core::{
    ApproxParams, DbscanParams, MetricDbscan, MetricsRecorder, NoopRecorder, Recorder,
};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::Euclidean;
use mdbscan_obs::{Phase, Registry};

const EPS: f64 = 1.0;
const MIN_PTS: usize = 10;
const RHO: f64 = 0.5;
const REPEATS: usize = 5;

struct ModeTimings {
    exact_ms: f64,
    streaming_ms: f64,
    exact_assignments: Vec<i32>,
    streaming_assignments: Vec<i32>,
}

/// Min-of-repeats timings for one recorder mode, each repeat on a
/// fresh engine so no fragment-cache hit flatters a later run.
fn run_mode(
    pts: &[Vec<f64>],
    rbar: f64,
    params: &DbscanParams,
    aparams: &ApproxParams,
    recorder: &Arc<dyn Recorder>,
) -> ModeTimings {
    let mut out = ModeTimings {
        exact_ms: f64::INFINITY,
        streaming_ms: f64::INFINITY,
        exact_assignments: Vec::new(),
        streaming_assignments: Vec::new(),
    };
    for _ in 0..REPEATS {
        let engine = MetricDbscan::builder(pts.to_vec(), Euclidean)
            .rbar(rbar)
            .recorder(Arc::clone(recorder))
            .build()
            .expect("engine build");
        let (exact, exact_ms) = timed(|| engine.exact(params).expect("exact run"));
        let (streaming, streaming_ms) = timed(|| engine.streaming(aparams).expect("streaming run"));
        out.exact_ms = out.exact_ms.min(exact_ms);
        out.streaming_ms = out.streaming_ms.min(streaming_ms);
        out.exact_assignments = exact.clustering.assignments();
        out.streaming_assignments = streaming.clustering.assignments();
    }
    out
}

fn main() {
    let args = HarnessArgs::parse();
    let n = args.sized(10_000);
    let pts = blobs(
        &BlobSpec {
            n,
            dim: 2,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
        },
        args.seed,
    )
    .into_parts()
    .0;
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    let rbar = aparams.rbar();

    let noop: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    let baseline = run_mode(&pts, rbar, &params, &aparams, &noop);
    let registry = Registry::new();
    let recorded = run_mode(
        &pts,
        rbar,
        &params,
        &aparams,
        &MetricsRecorder::shared(&registry),
    );

    // The read-only contract at bench scale.
    let labels_match = baseline.exact_assignments == recorded.exact_assignments
        && baseline.streaming_assignments == recorded.streaming_assignments;
    assert!(labels_match, "recorder changed labels");

    let overhead = |on: f64, off: f64| (on / off.max(1e-9) - 1.0) * 100.0;
    let exact_overhead_pct = overhead(recorded.exact_ms, baseline.exact_ms);
    let streaming_overhead_pct = overhead(recorded.streaming_ms, baseline.streaming_ms);
    if args.scale >= 1.0 {
        assert!(
            exact_overhead_pct <= 3.0,
            "exact-path recorder overhead {exact_overhead_pct:.2}% exceeds 3%"
        );
        assert!(
            streaming_overhead_pct <= 3.0,
            "streaming-path recorder overhead {streaming_overhead_pct:.2}% exceeds 3%"
        );
    }

    // Every pipeline phase was observed, and every histogram in the
    // registry is self-consistent.
    let snapshot = registry.snapshot();
    let pipeline = [
        Phase::NetBuild,
        Phase::Step1,
        Phase::Adjacency,
        Phase::Step2,
        Phase::Step3,
    ];
    let mut phase_rows = Vec::new();
    for phase in pipeline {
        let name = format!("mdbscan_phase_{}_micros", phase.name());
        let h = snapshot
            .histograms
            .get(&name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count > 0, "{name} never observed");
        phase_rows.push((phase.name(), h.count, h.quantile(0.5)));
    }
    let histograms_consistent = snapshot.histograms.values().all(|h| h.is_consistent());
    assert!(histograms_consistent, "inconsistent histogram snapshot");

    mdbscan_bench::row!("path", "noop_ms", "recorded_ms", "overhead_pct");
    mdbscan_bench::row!(
        "exact",
        format!("{:.2}", baseline.exact_ms),
        format!("{:.2}", recorded.exact_ms),
        format!("{exact_overhead_pct:.2}")
    );
    mdbscan_bench::row!(
        "streaming",
        format!("{:.2}", baseline.streaming_ms),
        format!("{:.2}", recorded.streaming_ms),
        format!("{streaming_overhead_pct:.2}")
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"obs\",\n");
    json.push_str(&format!(
        "  \"n\": {}, \"eps\": {EPS}, \"min_pts\": {MIN_PTS}, \"rho\": {RHO}, \"rbar\": {rbar}, \"repeats\": {REPEATS},\n",
        pts.len(),
    ));
    json.push_str(&format!(
        "  \"exact\": {{\"noop_ms\": {:.3}, \"recorded_ms\": {:.3}, \"overhead_pct\": {:.3}}},\n",
        baseline.exact_ms, recorded.exact_ms, exact_overhead_pct
    ));
    json.push_str(&format!(
        "  \"streaming\": {{\"noop_ms\": {:.3}, \"recorded_ms\": {:.3}, \"overhead_pct\": {:.3}}},\n",
        baseline.streaming_ms, recorded.streaming_ms, streaming_overhead_pct
    ));
    json.push_str(&format!("  \"labels_match\": {labels_match},\n"));
    json.push_str(&format!(
        "  \"histograms_consistent\": {histograms_consistent},\n"
    ));
    json.push_str("  \"phases\": [\n");
    for (i, (name, count, p50)) in phase_rows.iter().enumerate() {
        let sep = if i + 1 == phase_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"phase\": \"{name}\", \"count\": {count}, \"p50_micros\": {p50}}}{sep}\n"
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    print!("{json}");
    mdbscan_bench::write_json("BENCH_obs.json", &json);
    eprintln!("wrote BENCH_obs.json");
}
