//! Figure 3: running time (and distance evaluations) vs ε, per dataset
//! class, for Our_Exact, Our_Approx (ρ = 0.5), DBSCAN, DBSCAN++ (s = 0.3),
//! DYW_DBSCAN, GT_Exact, and GT_Approx. `MinPts = 10` throughout (§5.2).
//!
//! Grid algorithms run only where they are defined (low-dimensional
//! Euclidean, here d = 2), matching the paper's footnote that some
//! baselines are absent from some panels. The quadratic baselines are
//! skipped above the `--scale`-dependent size cap so default runs finish
//! in minutes.

use mdbscan_baselines as baselines;
use mdbscan_bench::registry::{self, StrEntry, VecEntry};
use mdbscan_bench::{row, timed, HarnessArgs};
use mdbscan_core::{ApproxParams, DbscanParams, MetricDbscan};
use mdbscan_metric::{CountingMetric, Euclidean, Levenshtein};

const MIN_PTS: usize = 10;
const RHO: f64 = 0.5;
const EPS_FACTORS: [f64; 4] = [0.75, 1.0, 1.5, 2.0];

fn main() {
    let args = HarnessArgs::parse();
    row!(
        "dataset",
        "class",
        "n",
        "d",
        "eps",
        "algorithm",
        "wall_ms",
        "dist_evals",
        "clusters"
    );
    for entry in registry::low_dim_suite(&args) {
        run_vec_panel(&entry, &args);
    }
    for entry in registry::high_dim_suite(&args) {
        run_vec_panel(&entry, &args);
    }
    for entry in registry::text_suite(&args) {
        run_text_panel(&entry);
    }
    for entry in registry::large_suite(&args) {
        run_large_panel(&entry);
    }
}

fn run_vec_panel(entry: &VecEntry, args: &HarnessArgs) {
    let pts = entry.data.points();
    let n = pts.len();
    let quadratic_ok = n <= args.sized(4000);
    for f in EPS_FACTORS {
        let eps = entry.eps0 * f;
        let report = |alg: &str, ms: f64, evals: u64, k: usize| {
            row!(
                entry.name,
                format!("{:?}", entry.class),
                n,
                entry.dim,
                format!("{eps:.4}"),
                alg,
                format!("{ms:.2}"),
                evals,
                k
            );
        };

        // Our_Exact (index build + solve, both counted).
        let m = CountingMetric::new(Euclidean);
        let owned = pts.to_vec();
        let mref = &m;
        let (res, ms) = timed(move || {
            let engine = MetricDbscan::builder(owned, mref)
                .rbar(eps / 2.0)
                .build()
                .expect("build");
            engine
                .exact(&DbscanParams::new(eps, MIN_PTS).expect("params"))
                .expect("exact")
        });
        report("Our_Exact", ms, m.count(), res.clustering.num_clusters());

        // Our_Approx.
        let m = CountingMetric::new(Euclidean);
        let params = ApproxParams::new(eps, MIN_PTS, RHO).expect("params");
        let owned = pts.to_vec();
        let mref = &m;
        let (res, ms) = timed(move || {
            let engine = MetricDbscan::builder(owned, mref)
                .rbar(params.rbar())
                .build()
                .expect("build");
            engine.approx(&params).expect("approx")
        });
        report("Our_Approx", ms, m.count(), res.clustering.num_clusters());

        if quadratic_ok {
            let m = CountingMetric::new(Euclidean);
            let (res, ms) = timed(|| baselines::original_dbscan(pts, &m, eps, MIN_PTS));
            report("DBSCAN", ms, m.count(), res.num_clusters());

            let m = CountingMetric::new(Euclidean);
            let (res, ms) = timed(|| {
                baselines::dbscan_pp(
                    pts,
                    &m,
                    eps,
                    MIN_PTS,
                    0.3,
                    baselines::SampleInit::Uniform,
                    args.seed,
                )
            });
            report("DBSCAN++", ms, m.count(), res.num_clusters());

            let m = CountingMetric::new(Euclidean);
            let z = n / 100 + 1;
            let (res, ms) =
                timed(|| baselines::dyw_dbscan(pts, &m, eps, MIN_PTS, z, 1.0, n, args.seed));
            report("DYW_DBSCAN", ms, m.count(), res.num_clusters());
        }

        if entry.dim <= 3 {
            let (res, ms) = timed(|| baselines::grid_dbscan_exact(pts, eps, MIN_PTS));
            report("GT_Exact", ms, 0, res.num_clusters());
            let (res, ms) = timed(|| baselines::grid_dbscan_approx(pts, eps, MIN_PTS, RHO));
            report("GT_Approx", ms, 0, res.num_clusters());
        }
    }
}

fn run_text_panel(entry: &StrEntry) {
    let pts = entry.data.points();
    let n = pts.len();
    for f in EPS_FACTORS {
        let eps = (entry.eps0 * f).round();
        let report = |alg: &str, ms: f64, evals: u64, k: usize| {
            row!(
                entry.name,
                "Text",
                n,
                "n/a",
                format!("{eps:.1}"),
                alg,
                format!("{ms:.2}"),
                evals,
                k
            );
        };
        let m = CountingMetric::new(Levenshtein);
        let owned = pts.to_vec();
        let mref = &m;
        let (res, ms) = timed(move || {
            let engine = MetricDbscan::builder(owned, mref)
                .rbar(eps / 2.0)
                .build()
                .expect("build");
            engine
                .exact(&DbscanParams::new(eps, MIN_PTS).expect("params"))
                .expect("exact")
        });
        report("Our_Exact", ms, m.count(), res.clustering.num_clusters());

        let m = CountingMetric::new(Levenshtein);
        let params = ApproxParams::new(eps, MIN_PTS, RHO).expect("params");
        let owned = pts.to_vec();
        let mref = &m;
        let (res, ms) = timed(move || {
            let engine = MetricDbscan::builder(owned, mref)
                .rbar(params.rbar())
                .build()
                .expect("build");
            engine.approx(&params).expect("approx")
        });
        report("Our_Approx", ms, m.count(), res.clustering.num_clusters());

        let m = CountingMetric::new(Levenshtein);
        let (res, ms) = timed(|| baselines::original_dbscan(pts, &m, eps, MIN_PTS));
        report("DBSCAN", ms, m.count(), res.num_clusters());

        let m = CountingMetric::new(Levenshtein);
        let (res, ms) = timed(|| {
            baselines::dbscan_pp(
                pts,
                &m,
                eps,
                MIN_PTS,
                0.3,
                baselines::SampleInit::Uniform,
                7,
            )
        });
        report("DBSCAN++", ms, m.count(), res.num_clusters());

        let m = CountingMetric::new(Levenshtein);
        let (res, ms) =
            timed(|| baselines::dyw_dbscan(pts, &m, eps, MIN_PTS, n / 50 + 1, 1.0, n, 7));
        report("DYW_DBSCAN", ms, m.count(), res.num_clusters());
    }
}

/// Million-scale panels: only the linear algorithms run (the paper's
/// panels (m)–(p) show exactly that — the baselines time out).
fn run_large_panel(entry: &VecEntry) {
    let pts = entry.data.points();
    let n = pts.len();
    for f in [1.0, 1.5] {
        let eps = entry.eps0 * f;
        let m = CountingMetric::new(Euclidean);
        let owned = pts.to_vec();
        let mref = &m;
        let (res, ms) = timed(move || {
            let engine = MetricDbscan::builder(owned, mref)
                .rbar(eps / 2.0)
                .build()
                .expect("build");
            engine
                .exact(&DbscanParams::new(eps, MIN_PTS).expect("params"))
                .expect("exact")
        });
        row!(
            entry.name,
            "Large",
            n,
            entry.dim,
            format!("{eps:.2}"),
            "Our_Exact",
            format!("{ms:.2}"),
            m.count(),
            res.clustering.num_clusters()
        );
        let m = CountingMetric::new(Euclidean);
        let params = ApproxParams::new(eps, MIN_PTS, RHO).expect("params");
        let owned = pts.to_vec();
        let mref = &m;
        let (res, ms) = timed(move || {
            let engine = MetricDbscan::builder(owned, mref)
                .rbar(params.rbar())
                .build()
                .expect("build");
            engine.approx(&params).expect("approx")
        });
        row!(
            entry.name,
            "Large",
            n,
            entry.dim,
            format!("{eps:.2}"),
            "Our_Approx",
            format!("{ms:.2}"),
            m.count(),
            res.clustering.num_clusters()
        );
    }
}
