//! Random-projection candidate index vs. the pruned generic path on
//! high-dimensional unit-norm embeddings: for d ∈ {128, 768} (sizes
//! scaled by `--scale`), runs the exact solver once as the quality
//! reference, then the ρ-approximate solver cold twice — generic
//! (net-anchored pruning) and [`CandidateIndex::RandomProjection`] —
//! and writes `BENCH_highdim.json` with wall-clock, the Step-1 +
//! labeling distance-evaluation front, the RP candidate ledger, and
//! ARI/AMI quality scores against the exact labels.
//!
//! Headline (asserted at `--scale ≥ 1`): on the d = 128, n = 50k config
//! the RP index cuts Step-1 + labeling distance evaluations at least
//! 3× while keeping ARI ≥ 0.95 against the exact solver. RP runs are
//! also asserted bit-identical when repeated (fixed seed). CI runs this
//! at a small `--scale` (where only the determinism assertions apply)
//! and smoke-parses the JSON.

use mdbscan_bench::{timed, HarnessArgs};
use mdbscan_core::{
    ApproxParams, ApproxStats, CandidateIndex, DbscanParams, MetricDbscan, RpConfig, RpStats,
};
use mdbscan_datagen::{highdim_embeddings, HighDimSpec};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::VectorBlock;

const EPS: f64 = 0.15;
const RHO: f64 = 2.0;
/// `r̄ = ρε/2 = ε`: the net the ρ-approximate contract dictates. The
/// workload is *two-level* (tiny near-duplicate blobs whose centers
/// spread over an intrinsic-5 continuum at ε-scale separations), so
/// this net cannot resolve the structure that matters: its cells lump
/// several blobs, members carry `dist_to_center` up to r̄ = ε, and the
/// per-member triangle sandwich `|a − d(q,c)| … a + d(q,c)` blurs by
/// ±ε. Every member within the ≈ 2ε straddle horizon must be evaluated,
/// and with intrinsic dimension 5 that horizon holds ≈ 2⁵× the ε-ball
/// mass — the "high doubling dimension erodes net-anchored pruning"
/// regime. The RP index sidesteps the net entirely: projection lists
/// rank by actual coordinates with no additive slack, so they resolve
/// blobs at any separation scale and pay only a capped candidate list.
const RBAR: f64 = 0.15;
/// The exact solver requires `r̄ ≤ ε/2` — and at ε/2 the net snaps to
/// the blob scale (blob diameter ≪ ε/2 ≪ blob separation), so *its*
/// sandwich is sharp and the exact reference stays cheap and healthy.
const RBAR_EXACT: f64 = 0.075;
/// Intrinsic dimension of the blob-center continuum. The paper's
/// low-doubling assumption holds at the blob level (the exact ε/2-net
/// is small and sharp); 5 is high enough that the coarse ρ-approximate
/// net's 2ε straddle horizon covers ~an order of magnitude more mass
/// than the ε-ball it is counting.
const INTRINSIC: usize = 5;
/// Shell occupancy: radii ~ R·U^{1/200}, i.e. essentially the sphere
/// itself (99 % of mass above 0.98R). Two reasons. Projection lists are
/// value-extreme heads — caps of the offset geometry — so interior
/// points (r ≪ R) can never reach a list head; a pure shell makes list
/// rank purely angular. And constant radius makes ε-ball occupancy
/// uniform over the shell: no subcritical fringe of interior stragglers
/// for the ρ-ambiguity band to mislabel. A shell is also the shape of
/// real centered/normalized embedding tables (offsets from the global
/// mean concentrate in norm).
const RADIAL_EXPONENT: f64 = 200.0;
/// One connected region. Projection lists have a *global* membership
/// cutoff: with several well-separated regions, each direction's lists
/// fill with whichever region happens to shift extreme along it, and
/// the per-region effective list depth collapses. (Depth-ranked probe
/// *selection* is immune to such common shifts — see the `mdbscan_rp`
/// crate docs — but list membership is not.) A single region spends the
/// whole list budget on the structure under test; quality is then the
/// cluster/noise separation, which is exactly where an undercounting
/// candidate index fails first.
const CLUSTERS: usize = 1;
const NOISE_FRAC: f64 = 0.02;
/// Sparse off-manifold chaff: offsets drawn in a random *ambient*
/// direction at norm ∈ [0.22, 0.30]. Chord geometry after
/// re-normalization: ≈ 0.50 to every shell point (inside the approx
/// adjacency horizon `(1+ρ)ε + 2r̄ = 0.75`, outside the labeling radius
/// `(ρ/2+1)ε = 0.30` and the exact horizon `ε + 2r̄ₑ = 0.30`), and
/// ≥ 0.30 to every other chaff point (each is a singleton net cell).
/// This is the cloud of "not quite anything" vectors every real
/// embedding table carries, and it is where net-anchored pruning has
/// nothing to hold on to: singleton cells are below `min_anchor_group`,
/// so the generic path pays a full distance evaluation for every chaff
/// entry in every row — per shell center, per chaff core-test, and per
/// chaff labeling scan. The RP index never sees them: chaff projection
/// values are ~±0.02 against list heads at ~0.4, so they poison no
/// list, and a chaff *query* burns only its candidate cap.
const HALO_FRAC: f64 = 0.10;
const HALO_LO: f64 = 0.22;
const HALO_HI: f64 = 0.30;
/// Region radius (offset norm before re-normalization). Wide on
/// purpose: projection values order points by their component along
/// `u`, so the within-region value *signal* scales with the region's
/// angular extent while the orthogonal-coordinate noise is fixed at
/// ~d^{-1/2}. A wide region is what makes the top-of-list head of a
/// query's best projections actually be its near neighbors — the CEOs
/// property random-projection indexes rely on.
const SPREAD: f64 = 0.5;

/// d = 768 runs at a fifth the points, so its shell is thinned to keep
/// blob spacing below ε (connectivity is area-bound: spacing ∝ R·B^{-1/4}).
fn spread(dim: usize) -> f64 {
    if dim >= 768 {
        0.4
    } else {
        SPREAD
    }
}
/// Near-duplicate blob structure (crops/paraphrases — the shape the
/// paper's §5.1 noisy-duplication protocol models): 10 members per
/// blob at offset norm ≈ 0.012 ≪ ε/2. Small blobs keep the ε-ball
/// blob-count high enough that Poisson lumpiness cannot push a blob's
/// neighborhood below MinPts.
const BLOB_SIZE: usize = 10;
const BLOB_SPREAD: f64 = 0.012;
const MAX_CENTER_DOT: f64 = 0.15;

/// With the region radius pinned (by the sphere) instead of the blob
/// spacing, ε-ball occupancy scales linearly with `n`: MinPts must
/// track it to keep the core/border split scale-invariant.
fn min_pts(n: usize) -> usize {
    (n / 1250).max(10)
}

struct Side {
    wall_ms: f64,
    stats: ApproxStats,
    rp: RpStats,
    ari: f64,
    ami: f64,
}

struct Config {
    dim: usize,
    n: usize,
    exact_wall_ms: f64,
    generic: Side,
    rp: Side,
    front_reduction: f64,
}

/// The phases RP replaces: Step-1 core counting + Algorithm-2 labeling.
fn front(stats: &ApproxStats) -> u64 {
    stats.summary_evals + stats.label_evals
}

fn rp_config(seed: u64, n: usize) -> RpConfig {
    // Candidates per query ≈ probes · top_m, which must sit well below
    // the generic path's per-query straddle horizon while carrying
    // ≥ MinPts true neighbors for core points. Coverage is governed by
    // the query's best (shallowest) *two-sided* list depth over the K
    // directions: probing is depth-ranked, so a query is covered iff
    // some direction ranks it — and hence its ε-neighbors, which
    // project within ~±ε of it — inside top_m. On this workload that
    // best-of-512 depth concentrates just under n/256, so top_m = n/128
    // covers with ~2× margin; probes = 4 then caps the per-query
    // candidate bill at n/32.
    let top_m = ((n / 128).clamp(64, 512)) as u32;
    RpConfig::new(seed ^ 0x5eed_ca4d)
        .projections(512)
        .top_m(top_m)
        .probes(4)
}

fn build_engine(
    block: &VectorBlock<f64>,
    index: CandidateIndex,
    rbar: f64,
) -> MetricDbscan<u32, VectorBlock<f64>> {
    // cache_capacity(0): every run recomputes everything (RP build
    // included), so wall-clock and counters compare cold against cold.
    MetricDbscan::builder(block.ids(), block.clone())
        .rbar(rbar)
        .cache_capacity(0)
        .candidate_index(index)
        .build()
        .expect("engine")
}

fn run_side(
    block: &VectorBlock<f64>,
    index: CandidateIndex,
    reference: &[i32],
) -> (Side, Vec<i32>) {
    let engine = build_engine(block, index, RBAR);
    let params = ApproxParams::new(EPS, min_pts(block.ids().len()), RHO).expect("params");
    let (run, wall_ms) = timed(|| engine.approx(&params).expect("approx"));
    let stats = *run.report.approx_stats().expect("approx stats");
    let rp = run.report.rp;
    let labels = run.clustering.assignments();
    let side = Side {
        wall_ms,
        ari: adjusted_rand_index(reference, &labels),
        ami: adjusted_mutual_info(reference, &labels),
        stats,
        rp,
    };
    (side, labels)
}

fn label_shape(labels: &[i32]) -> (usize, usize) {
    let mut ids: Vec<i32> = labels.iter().copied().filter(|&l| l >= 0).collect();
    ids.sort_unstable();
    ids.dedup();
    (ids.len(), labels.iter().filter(|&&l| l < 0).count())
}

fn main() {
    let args = HarnessArgs::parse();
    let mut configs: Vec<Config> = Vec::new();
    println!(
        "dim\tn\tpath\twall_ms\tsummary_evals\tlabel_evals\ttotal_evals\tanchors\tb_acc\tb_rej\trp_emitted\trp_rejected\tari\tami"
    );
    for (dim, base) in [(128usize, 50_000usize), (768, 10_000)] {
        let n = args.sized(base);
        let rows = highdim_embeddings(
            HighDimSpec {
                n,
                dim,
                clusters: CLUSTERS,
                spread: spread(dim),
                intrinsic: INTRINSIC,
                radial_exponent: RADIAL_EXPONENT,
                noise_frac: NOISE_FRAC,
                halo_frac: HALO_FRAC,
                halo_lo: HALO_LO,
                halo_hi: HALO_HI,
                halo_ambient: true,
                blob_size: BLOB_SIZE,
                blob_spread: BLOB_SPREAD,
                max_center_dot: MAX_CENTER_DOT,
            },
            args.seed,
        )
        .into_parts()
        .0;
        let block = VectorBlock::<f64>::from_rows(&rows);

        // Exact reference labels (generic path; RP never touches exact).
        let exact_engine = build_engine(&block, CandidateIndex::Generic, RBAR_EXACT);
        let exact_params = DbscanParams::new(EPS, min_pts(n)).expect("params");
        let (exact_run, exact_wall_ms) =
            timed(|| exact_engine.exact(&exact_params).expect("exact"));
        let reference = exact_run.clustering.assignments();

        {
            let (nc, nn) = label_shape(&reference);
            eprintln!("# d={dim} exact: {nc} clusters, {nn} noise of {n}");
        }
        let (generic, labels_g) = run_side(&block, CandidateIndex::Generic, &reference);
        {
            let (nc, nn) = label_shape(&labels_g);
            eprintln!("# d={dim} generic-approx: {nc} clusters, {nn} noise of {n}");
        }
        let cfg = rp_config(args.seed, n);
        let (rp, labels_rp) = run_side(&block, CandidateIndex::RandomProjection(cfg), &reference);
        assert!(
            rp.rp.candidates_emitted > 0,
            "RP path must actually emit candidates at d={dim}, n={n}"
        );
        // Fixed seed ⇒ the RP run is a pure function of the input: a
        // repeat must be bit-identical.
        let (_, labels_rp2) = run_side(&block, CandidateIndex::RandomProjection(cfg), &reference);
        assert_eq!(
            labels_rp, labels_rp2,
            "RP labels must be deterministic for a fixed seed at d={dim}, n={n}"
        );

        let front_reduction = front(&generic.stats) as f64 / front(&rp.stats).max(1) as f64;
        for (path, side) in [("generic", &generic), ("rp", &rp)] {
            mdbscan_bench::row!(
                dim,
                rows.len(),
                path,
                format!("{:.1}", side.wall_ms),
                side.stats.summary_evals,
                side.stats.label_evals,
                side.stats.distance_evals(),
                side.stats.pruning.anchor_evals,
                side.stats.pruning.bound_accepts,
                side.stats.pruning.bound_rejects,
                side.rp.candidates_emitted,
                side.rp.candidates_rejected,
                format!("{:.4}", side.ari),
                format!("{:.4}", side.ami)
            );
        }
        configs.push(Config {
            dim,
            n: rows.len(),
            exact_wall_ms,
            generic,
            rp,
            front_reduction,
        });
    }

    // Headline: at full scale the d=128 config must show ≥ 3× fewer
    // Step-1 + labeling evaluations through RP at ARI ≥ 0.95.
    let headline = configs
        .iter()
        .filter(|c| c.dim == 128)
        .max_by_key(|c| c.n)
        .expect("configs is non-empty");
    let full_scale = args.scale >= 1.0;
    if full_scale {
        assert!(
            headline.front_reduction >= 3.0,
            "RP front-eval reduction {:.2}× < 3× at d=128, n={} \
             (generic {} vs rp {})",
            headline.front_reduction,
            headline.n,
            front(&headline.generic.stats),
            front(&headline.rp.stats),
        );
        assert!(
            headline.rp.ari >= 0.95,
            "RP quality ARI {:.4} < 0.95 at d=128, n={}",
            headline.rp.ari,
            headline.n,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"highdim\",\n");
    json.push_str(&format!(
        "  \"eps\": {EPS}, \"min_pts\": {}, \"rho\": {RHO}, \"rbar\": {RBAR}, \
         \"intrinsic\": {INTRINSIC}, \"spread\": {SPREAD}, \"noise_frac\": {NOISE_FRAC}, \
         \"halo_frac\": {HALO_FRAC}, \"blob_size\": {BLOB_SIZE}, \
         \"blob_spread\": {BLOB_SPREAD}, \"scale\": {},\n",
        min_pts(args.sized(50_000)),
        args.scale
    ));
    json.push_str(&format!(
        "  \"headline\": {{\"dim\": 128, \"n\": {}, \"front_reduction\": {:.2}, \
         \"rp_ari\": {:.4}, \"asserted_3x_and_q95\": {full_scale}}},\n",
        headline.n, headline.front_reduction, headline.rp.ari
    ));
    json.push_str("  \"configs\": [\n");
    for (i, c) in configs.iter().enumerate() {
        let sep = if i + 1 == configs.len() { "" } else { "," };
        let g = &c.generic;
        let r = &c.rp;
        json.push_str(&format!(
            "    {{\"dim\": {}, \"n\": {}, \"exact_wall_ms\": {:.1}, \
             \"generic\": {{\"wall_ms\": {:.1}, \"front_evals\": {}, \"total_evals\": {}, \
             \"ari\": {:.4}, \"ami\": {:.4}}}, \
             \"rp\": {{\"wall_ms\": {:.1}, \"front_evals\": {}, \"total_evals\": {}, \
             \"projections\": {}, \"candidates_emitted\": {}, \"candidates_rejected\": {}, \
             \"ari\": {:.4}, \"ami\": {:.4}}}, \
             \"front_reduction\": {:.2}, \"rp_deterministic\": true}}{sep}\n",
            c.dim,
            c.n,
            c.exact_wall_ms,
            g.wall_ms,
            front(&g.stats),
            g.stats.distance_evals(),
            g.ari,
            g.ami,
            r.wall_ms,
            front(&r.stats),
            r.stats.distance_evals(),
            r.rp.projections,
            r.rp.candidates_emitted,
            r.rp.candidates_rejected,
            r.ari,
            r.ami,
            c.front_reduction,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    print!("{json}");
    mdbscan_bench::write_json("BENCH_highdim.json", &json);
    eprintln!("wrote BENCH_highdim.json ({} configs)", configs.len());
}
