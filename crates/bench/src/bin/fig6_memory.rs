//! Figure 6: memory usage of the streaming algorithm — the fraction of the
//! stream kept in memory, `(|E| + |M|)/n` — as ε varies, for
//! ρ ∈ {0.5, 1, 2}, across eight datasets. The paper's headline: ≈ 1 % of
//! the points suffice on the dense image sets (the green diamonds mark
//! the ε used in Table 4, reproduced here as the `at_table4_eps` column).

use mdbscan_bench::registry;
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_core::{ApproxParams, StreamingApproxDbscan};
use mdbscan_metric::Euclidean;

const MIN_PTS: usize = 10;
const RHOS: [f64; 3] = [0.5, 1.0, 2.0];
const EPS_FACTORS: [f64; 4] = [0.75, 1.0, 1.5, 2.0];

fn main() {
    let args = HarnessArgs::parse();
    row!(
        "dataset",
        "n",
        "rho",
        "eps",
        "centers",
        "parked",
        "summary",
        "memory_fraction",
        "at_table4_eps"
    );
    let entries = registry::low_dim_suite(&args)
        .into_iter()
        .chain(registry::high_dim_suite(&args));
    for entry in entries {
        let pts = entry.data.points();
        let n = pts.len();
        for rho in RHOS {
            for f in EPS_FACTORS {
                let eps = entry.eps0 * f;
                let params = ApproxParams::new(eps, MIN_PTS, rho).expect("params");
                let (_c, engine) =
                    StreamingApproxDbscan::run(&Euclidean, &params, || pts.iter().cloned())
                        .expect("stream");
                let fp = engine.footprint();
                row!(
                    entry.name,
                    n,
                    rho,
                    format!("{eps:.3}"),
                    fp.centers,
                    fp.parked,
                    fp.summary,
                    format!("{:.5}", fp.stored_points() as f64 / n as f64),
                    (f == 1.0 && rho == 0.5) // the Table 4 operating point
                );
            }
        }
    }
}
