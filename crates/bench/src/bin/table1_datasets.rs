//! Table 1: the dataset inventory — every registry entry with its shape,
//! class, ground-truth cluster count, outlier share, and (for vector
//! sets) the empirical doubling-dimension probe confirming the
//! "low intrinsic dimension" premise the generators are built to satisfy.

use mdbscan_bench::registry;
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_metric::{estimate_doubling_dimension, Euclidean};

fn main() {
    let args = HarnessArgs::parse();
    row!(
        "dataset",
        "class",
        "n",
        "dim",
        "clusters",
        "outlier_share",
        "doubling_probe"
    );
    let entries = registry::low_dim_suite(&args)
        .into_iter()
        .chain(registry::shape_suite(&args).into_iter().skip(1))
        .chain(registry::high_dim_suite(&args))
        .chain(registry::pcam_lsun(&args))
        .chain(registry::large_suite(&args));
    for e in entries {
        let labels = e.data.labels().expect("labeled");
        let k = labels
            .iter()
            .filter(|&&l| l >= 0)
            .collect::<std::collections::HashSet<_>>()
            .len();
        let noise = labels.iter().filter(|&&l| l == -1).count();
        // probe on a sample of inliers to keep this fast
        let sample: Vec<Vec<f64>> = e
            .data
            .points()
            .iter()
            .zip(labels)
            .filter(|(_, &l)| l >= 0)
            .map(|(p, _)| p.clone())
            .take(800)
            .collect();
        let probe = estimate_doubling_dimension(&sample, &Euclidean, 6);
        row!(
            e.name,
            format!("{:?}", e.class),
            e.data.len(),
            e.dim,
            k,
            format!("{:.2}%", 100.0 * noise as f64 / e.data.len() as f64),
            format!("{:.1}", probe.dimension)
        );
    }
    for e in registry::text_suite(&args) {
        let labels = e.data.labels().expect("labeled");
        let k = labels
            .iter()
            .filter(|&&l| l >= 0)
            .collect::<std::collections::HashSet<_>>()
            .len();
        let noise = labels.iter().filter(|&&l| l == -1).count();
        row!(
            e.name,
            "Text",
            e.data.len(),
            "n/a",
            k,
            format!("{:.2}%", 100.0 * noise as f64 / e.data.len() as f64),
            "n/a"
        );
    }
    let s = registry::session_stream(&args);
    row!(
        "Session(stream)",
        "Stream",
        s.n,
        s.dim,
        s.sources,
        format!("{:.2}%", 100.0 * s.outlier_prob),
        "n/a"
    );
}
