//! Distance-kernel throughput and cold-start cost: the SoA
//! (dimension-major) [`VectorBlock`] batch kernels against a faithful
//! replica of the pre-SoA row-major scalar path, plus the zero-copy
//! self-contained artifact load.
//!
//! Writes `BENCH_kernels.json` with two panels:
//!
//! * **kernels** — `dist_many` throughput (million pairs/sec) for
//!   d ∈ {2, 3, 128, 768} at `f32`/`f64` storage, AoS baseline vs SoA,
//!   asserting the two produce **bit-identical** distances (the layout
//!   moves where coordinates live, never the accumulation order);
//! * **load** — `save_self_contained`/`load_self_contained` round trip
//!   at two sizes, asserting the loaded block aliases the artifact
//!   buffer (`is_zero_copy`), the load itself evaluates zero
//!   distances, the bytes *copied* are independent of `n`, and the
//!   first warm query costs exactly what the unrestarted engine's warm
//!   rerun costs with bit-identical labels.
//!
//! At `--scale ≥ 1` the ISSUE 8 speedup floors are enforced: ≥ 2× at
//! d = 128 (`f32`) and ≥ 1.5× at d = 2 (`f64`). CI runs this at a
//! small `--scale` (assertions still run; floors are skipped) and
//! smoke-parses the JSON.

use mdbscan_bench::{timed, HarnessArgs};
use mdbscan_core::{DbscanParams, MetricDbscan, NetStrategy};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::{BatchMetric, BlockScalar, CountingMetric, VectorBlock};

const EPS: f64 = 1.0;
const MIN_PTS: usize = 10;
const RBAR: f64 = 0.5;
/// Pair count each timed measurement aims for, so small `--scale`
/// smoke runs still measure more than timer noise.
const TARGET_PAIRS: usize = 2_000_000;

/// The pre-SoA storage: rows packed row-major in one buffer, distances
/// computed per candidate by the serial dimension loop — the exact
/// shape (stride walk, per-row bounds asserts, `sum += d·d` ascending,
/// one final `sqrt`) the old `VectorBlock::row_distance` had.
struct RowMajorBlock<T> {
    dim: usize,
    rows: usize,
    data: Vec<T>,
}

impl<T: BlockScalar> RowMajorBlock<T> {
    fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            data.extend(row.iter().map(|&v| T::from_f64(v)));
        }
        Self {
            dim,
            rows: rows.len(),
            data,
        }
    }

    #[inline]
    fn row_distance(&self, a: usize, b: usize) -> f64 {
        assert!(a < self.rows, "row {a} out of bounds");
        assert!(b < self.rows, "row {b} out of bounds");
        let ra = &self.data[a * self.dim..(a + 1) * self.dim];
        let rb = &self.data[b * self.dim..(b + 1) * self.dim];
        let mut sum = 0.0;
        for (x, y) in ra.iter().zip(rb) {
            let d = x.to_f64() - y.to_f64();
            sum += d * d;
        }
        sum.sqrt()
    }

    /// The default (pre-override) `BatchMetric::dist_many`: a map over
    /// the scalar oracle.
    fn dist_many(&self, q: usize, ids: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.extend(ids.iter().map(|&i| self.row_distance(q, i as usize)));
    }
}

struct KernelRow {
    dim: usize,
    scalar: &'static str,
    rows: usize,
    reps: usize,
    aos_ms: f64,
    soa_ms: f64,
    aos_mpairs: f64,
    soa_mpairs: f64,
    speedup: f64,
}

/// One kernel measurement: both layouts sweep the same queries over
/// all rows; outputs are asserted bit-identical before timing.
fn bench_kernel<T: BlockScalar>(
    scalar: &'static str,
    rows: &[Vec<f64>],
    queries: usize,
) -> KernelRow {
    let dim = rows[0].len();
    let n = rows.len();
    let soa = VectorBlock::<T>::from_rows(rows);
    let aos = RowMajorBlock::<T>::from_rows(rows);
    let points = soa.ids();
    let ids: Vec<u32> = (0..n as u32).collect();
    let qs: Vec<usize> = (0..queries).map(|k| k * n / queries).collect();

    // Bit-identity first: same values, same accumulation order, so the
    // sqrt of the same f64 sum — compare the raw bits.
    let (mut a_out, mut s_out) = (Vec::new(), Vec::new());
    for &q in &qs {
        aos.dist_many(q, &ids, &mut a_out);
        soa.dist_many(&points, &(q as u32), &ids, &mut s_out);
        assert_eq!(a_out.len(), s_out.len());
        for (j, (&x, &y)) in a_out.iter().zip(&s_out).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "d={dim} {scalar}: SoA diverged from scalar at query {q}, candidate {j}: {x} vs {y}"
            );
        }
    }

    let pairs_per_pass = queries * n;
    let reps = (TARGET_PAIRS / pairs_per_pass.max(1)).max(1);
    let mut best_aos = f64::INFINITY;
    let mut best_soa = f64::INFINITY;
    // Three timed rounds each, keep the best — steadier on a shared box.
    for _ in 0..3 {
        let (_, ms) = timed(|| {
            for _ in 0..reps {
                for &q in &qs {
                    aos.dist_many(q, &ids, &mut a_out);
                    std::hint::black_box(&a_out);
                }
            }
        });
        best_aos = best_aos.min(ms);
        let (_, ms) = timed(|| {
            for _ in 0..reps {
                for &q in &qs {
                    soa.dist_many(&points, &(q as u32), &ids, &mut s_out);
                    std::hint::black_box(&s_out);
                }
            }
        });
        best_soa = best_soa.min(ms);
    }
    let total_pairs = (pairs_per_pass * reps) as f64;
    KernelRow {
        dim,
        scalar,
        rows: n,
        reps,
        aos_ms: best_aos,
        soa_ms: best_soa,
        aos_mpairs: total_pairs / best_aos / 1e3,
        soa_mpairs: total_pairs / best_soa / 1e3,
        speedup: best_aos / best_soa.max(1e-9),
    }
}

fn gen_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n,
            dim,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
        },
        seed,
    )
    .into_parts()
    .0
}

struct LoadProbe {
    n: usize,
    artifact_bytes: u64,
    save_ms: f64,
    load_ms: f64,
    point_payload_bytes: u64,
    metric_payload_bytes: u64,
    bytes_copied: u64,
    warm_query_ms: f64,
    warm_evals: u64,
}

/// Builds a `VectorBlock` engine at size `n`, saves it self-contained,
/// reloads it, and proves the restart is zero-copy, free in `t_dis`,
/// and invisible in the answers.
fn probe_load(n: usize, seed: u64) -> LoadProbe {
    let rows = gen_rows(n, 3, seed);
    let block = VectorBlock::<f64>::from_rows(&rows);
    let engine = MetricDbscan::builder(block.ids(), CountingMetric::new(block))
        .rbar(RBAR)
        .net_strategy(NetStrategy::RadiusGuided)
        .build()
        .expect("build engine");
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let want = engine.exact(&params).expect("exact on fresh engine");
    // What a warm repeat costs on the *unrestarted* engine — the floor
    // the loaded replica must hit exactly.
    engine.metric().reset();
    engine.exact(&params).expect("warm rerun");
    let warm_evals = engine.metric().reset();

    let mut artifact = std::env::temp_dir();
    artifact.push(format!(
        "mdbscan_kernel_bench_{}_{n}.mdb",
        std::process::id()
    ));
    let (_, save_ms) = timed(|| {
        engine
            .save_self_contained(&artifact)
            .expect("save self-contained artifact")
    });
    let artifact_bytes = std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0);
    let (loaded, load_ms) = timed(|| {
        MetricDbscan::<u32, CountingMetric<VectorBlock<f64>>>::load_self_contained(&artifact)
            .expect("load self-contained artifact")
    });
    std::fs::remove_file(&artifact).ok();

    assert_eq!(
        loaded.metric().count(),
        0,
        "load must perform zero distance evaluations"
    );
    assert!(
        loaded.metric().inner().is_zero_copy(),
        "loaded block must alias the artifact buffer"
    );
    let stats = loaded.load_stats().expect("loaded engine carries stats");
    assert_eq!(
        stats.point_bytes_copied, 0,
        "point payload must decode by reference"
    );
    let (warm, warm_query_ms) = timed(|| loaded.exact(&params).expect("exact on loaded engine"));
    assert!(
        warm.report.cache_hit,
        "the reloaded engine must hit the persisted fragment cache"
    );
    assert_eq!(
        loaded.metric().count(),
        warm_evals,
        "warm query on the replica must cost exactly the unrestarted warm rerun"
    );
    assert!(
        warm.clustering == want.clustering,
        "reloaded engine diverged from the engine that saved it"
    );
    LoadProbe {
        n,
        artifact_bytes,
        save_ms,
        load_ms,
        point_payload_bytes: stats.point_payload_bytes,
        metric_payload_bytes: stats.metric_payload_bytes,
        bytes_copied: stats.bytes_copied(),
        warm_query_ms,
        warm_evals,
    }
}

fn main() {
    let args = HarnessArgs::parse();

    // Row counts shrink as d grows so every panel does comparable work.
    let configs: [(usize, usize); 4] = [
        (2, args.sized(120_000)),
        (3, args.sized(80_000)),
        (128, args.sized(16_000)),
        (768, args.sized(3_000)),
    ];
    let queries = 16;
    let mut kernels: Vec<KernelRow> = Vec::new();
    for &(dim, n) in &configs {
        let rows = gen_rows(n, dim, args.seed);
        kernels.push(bench_kernel::<f64>("f64", &rows, queries));
        kernels.push(bench_kernel::<f32>("f32", &rows, queries));
        let last = &kernels[kernels.len() - 2..];
        for k in last {
            mdbscan_bench::row!(
                format!("d={}", k.dim),
                k.scalar,
                k.rows,
                format!("{:.1} Mpairs/s AoS", k.aos_mpairs),
                format!("{:.1} Mpairs/s SoA", k.soa_mpairs),
                format!("{:.2}x", k.speedup),
            );
        }
    }

    if args.scale >= 1.0 {
        let floor = |dim: usize, scalar: &str, want: f64| {
            let k = kernels
                .iter()
                .find(|k| k.dim == dim && k.scalar == scalar)
                .expect("config present");
            assert!(
                k.speedup >= want,
                "SoA speedup floor missed at d={dim} {scalar}: {:.2}x < {want}x",
                k.speedup
            );
        };
        floor(128, "f32", 2.0);
        floor(2, "f64", 1.5);
    }

    // Cold-start panel: two sizes to pin down that the copied bytes do
    // not grow with n (only fixed section headers are materialized).
    let n_full = args.sized(40_000);
    let full = probe_load(n_full, args.seed);
    let half = probe_load(n_full / 2, args.seed);
    assert_eq!(
        full.bytes_copied, half.bytes_copied,
        "bytes copied on load must be independent of n"
    );
    mdbscan_bench::row!(
        format!("load n={}", full.n),
        format!("{} B artifact", full.artifact_bytes),
        format!("{:.2} ms load", full.load_ms),
        format!("{} B copied", full.bytes_copied),
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str(&format!(
        "  \"seed\": {}, \"scale\": {}, \"queries\": {queries},\n",
        args.seed, args.scale
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let sep = if i + 1 == kernels.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"dim\": {}, \"scalar\": \"{}\", \"rows\": {}, \"reps\": {}, \"aos_ms\": {:.2}, \"soa_ms\": {:.2}, \"aos_mpairs_per_sec\": {:.1}, \"soa_mpairs_per_sec\": {:.1}, \"speedup\": {:.2}, \"bitwise_equal\": true}}{sep}\n",
            k.dim, k.scalar, k.rows, k.reps, k.aos_ms, k.soa_ms, k.aos_mpairs, k.soa_mpairs,
            k.speedup,
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"load\": {\n");
    for (probe, name, sep) in [(&full, "full", ","), (&half, "half", ",")] {
        json.push_str(&format!(
            "    \"{name}\": {{\"n\": {}, \"artifact_bytes\": {}, \"save_ms\": {:.2}, \"load_ms\": {:.2}, \"point_payload_bytes\": {}, \"metric_payload_bytes\": {}, \"bytes_copied\": {}, \"warm_query_ms\": {:.2}, \"warm_query_evals\": {}}}{sep}\n",
            probe.n,
            probe.artifact_bytes,
            probe.save_ms,
            probe.load_ms,
            probe.point_payload_bytes,
            probe.metric_payload_bytes,
            probe.bytes_copied,
            probe.warm_query_ms,
            probe.warm_evals,
        ));
    }
    json.push_str("    \"zero_copy\": true,\n");
    json.push_str("    \"load_distance_evals\": 0,\n");
    json.push_str("    \"bytes_copied_independent_of_n\": true,\n");
    json.push_str("    \"warm_query_cache_hit\": true,\n");
    json.push_str("    \"labels_match_after_load\": true\n");
    json.push_str("  }\n");
    json.push_str("}\n");
    print!("{json}");
    mdbscan_bench::write_json("BENCH_kernels.json", &json);
    eprintln!(
        "wrote BENCH_kernels.json ({} kernel configs, load copied {} B at n={} and {} B at n={})",
        kernels.len(),
        full.bytes_copied,
        full.n,
        half.bytes_copied,
        half.n,
    );
}
