//! Figure 5: visual comparison of exact DBSCAN, ρ = 0.5 approximate
//! DBSCAN, and DP-means on the 2-D shape datasets (moons and banana).
//!
//! Writes one CSV per (dataset, algorithm) under `target/fig5/` with
//! columns `x,y,label` (label −1 = noise) — plottable with any tool — and
//! prints an ASCII preview plus ARI/AMI per panel so the "very close to
//! exact / DP-means butchers the shapes" conclusion is visible in the
//! terminal.

use mdbscan_baselines::{dp_means, lambda_from_kcenter};
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_core::{ApproxParams, Clustering, DbscanParams, MetricDbscan};
use mdbscan_datagen::{banana, moons};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::{Dataset, Euclidean};
use std::io::Write;

const MIN_PTS: usize = 10;

fn main() {
    let args = HarnessArgs::parse();
    std::fs::create_dir_all("target/fig5").expect("mkdir target/fig5");
    row!(
        "dataset",
        "algorithm",
        "clusters",
        "largest",
        "noise",
        "ari",
        "ami",
        "csv"
    );
    let panels: Vec<(Dataset<Vec<f64>>, f64)> = vec![
        (moons(args.sized(1500), 0.06, 0.03, args.seed), 0.12),
        (banana(args.sized(1500), 0.03, args.seed + 1), 0.45),
    ];
    for (ds, eps) in &panels {
        let pts = ds.points();
        let truth = ds.labels().expect("labeled");
        // One engine per panel, at the resolution of the finest query
        // (the ρ = 0.5 approximate run needs r̄ ≤ ρε/2 = ε/4).
        let aparams = ApproxParams::new(*eps, MIN_PTS, 0.5).expect("params");
        let engine = MetricDbscan::builder(pts.to_vec(), Euclidean)
            .rbar(aparams.rbar())
            .build()
            .expect("build");
        let exact = engine
            .exact(&DbscanParams::new(*eps, MIN_PTS).expect("params"))
            .expect("exact")
            .clustering;
        emit(ds, "exact", &exact, truth);
        let approx = engine.approx(&aparams).expect("approx").clustering;
        emit(ds, "approx_rho0.5", &approx, truth);
        let lambda = lambda_from_kcenter(pts, 2, 0);
        let dp = dp_means(pts, lambda, 50);
        emit(ds, "dp_means", &dp, truth);
    }
}

fn emit(ds: &Dataset<Vec<f64>>, alg: &str, c: &Clustering, truth: &[i32]) {
    let pred = c.assignments();
    let path = format!("target/fig5/{}_{alg}.csv", ds.name());
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("csv"));
    writeln!(f, "x,y,label").expect("write");
    for (p, l) in ds.points().iter().zip(pred.iter()) {
        writeln!(f, "{},{},{}", p[0], p[1], l).expect("write");
    }
    f.flush().expect("flush");
    row!(
        ds.name(),
        alg,
        c.num_clusters(),
        c.cluster_sizes().into_iter().max().unwrap_or(0),
        c.num_noise(),
        format!("{:.4}", adjusted_rand_index(truth, &pred)),
        format!("{:.4}", adjusted_mutual_info(truth, &pred)),
        path
    );
    ascii_plot(ds, &pred);
}

/// 60×24 terminal scatter: digits/letters = clusters, `.` = noise.
fn ascii_plot(ds: &Dataset<Vec<f64>>, pred: &[i32]) {
    const W: usize = 64;
    const H: usize = 20;
    let (mut lo, mut hi) = ([f64::INFINITY; 2], [f64::NEG_INFINITY; 2]);
    for p in ds.points() {
        for k in 0..2 {
            lo[k] = lo[k].min(p[k]);
            hi[k] = hi[k].max(p[k]);
        }
    }
    let mut canvas = vec![vec![' '; W]; H];
    for (p, &l) in ds.points().iter().zip(pred.iter()) {
        let x = ((p[0] - lo[0]) / (hi[0] - lo[0] + 1e-12) * (W - 1) as f64) as usize;
        let y = ((p[1] - lo[1]) / (hi[1] - lo[1] + 1e-12) * (H - 1) as f64) as usize;
        let ch = match l {
            -1 => '.',
            l => char::from_digit((l as u32) % 36, 36).unwrap_or('#'),
        };
        canvas[H - 1 - y][x] = ch;
    }
    for line in canvas {
        let s: String = line.into_iter().collect();
        println!("  |{s}|");
    }
}
