//! Ablations of the design choices DESIGN.md calls out (not a paper
//! table; motivated by §3.3 and Remarks 3/5):
//!
//! 1. dense-ball shortcut on/off (Step 1's amortization, Lemma 4);
//! 2. cover-tree BCP vs brute-force BCP (Step 2, Lemma 5);
//! 3. early termination on/off in the merge;
//! 4. engine reuse vs rebuild across an ε sweep (Remark 5), plus the
//!    PR-2 fragment-tree LRU: replaying the same sweep warm;
//! 5. the §3.2 cover-tree pipeline vs the Algorithm 1 pipeline on
//!    all-inlier data (Theorem 1's regime) — both as engine methods, so
//!    the whole-input cover tree is also built once and reused.

use mdbscan_bench::registry;
use mdbscan_bench::{row, timed, HarnessArgs};
use mdbscan_core::{DbscanParams, ExactConfig, MetricDbscan};
use mdbscan_metric::{CountingMetric, Euclidean};

const MIN_PTS: usize = 10;

fn main() {
    let args = HarnessArgs::parse();

    println!("# ablation 1-3: ExactConfig toggles");
    row!(
        "dataset",
        "dense_shortcut",
        "cover_tree",
        "early_term",
        "solve_ms",
        "dist_evals",
        "clusters"
    );
    let entries = registry::shape_suite(&args)
        .into_iter()
        .chain(registry::high_dim_suite(&args).into_iter().take(2));
    for entry in entries {
        let pts = entry.data.points();
        let eps = entry.eps0;
        let params = DbscanParams::new(eps, MIN_PTS).expect("params");
        let m = CountingMetric::new(Euclidean);
        // Non-default toggle combinations bypass the fragment cache, so
        // one engine is fair game for the whole grid; the (true, true)
        // row disables caching explicitly to measure the raw pipeline.
        let engine = MetricDbscan::builder(pts.to_vec(), &m)
            .rbar(eps / 2.0)
            .cache_capacity(0)
            .build()
            .expect("build");
        for dense in [true, false] {
            for tree in [true, false] {
                for early in [true, false] {
                    let cfg = ExactConfig {
                        dense_shortcut: dense,
                        cover_tree_merge: tree,
                        early_termination: early,
                        ..ExactConfig::default()
                    };
                    m.reset();
                    let (run, ms) = timed(|| engine.exact_with(&params, &cfg).expect("exact"));
                    row!(
                        entry.name,
                        dense,
                        tree,
                        early,
                        format!("{ms:.2}"),
                        m.count(),
                        run.clustering.num_clusters()
                    );
                }
            }
        }
    }

    println!(
        "\n# ablation 4: engine reuse vs rebuild across an eps sweep (Remark 5) + warm LRU (PR 2)"
    );
    row!("dataset", "mode", "total_ms");
    for entry in registry::high_dim_suite(&args).into_iter().take(2) {
        let pts = entry.data.points();
        let sweep: Vec<f64> = [1.0, 1.25, 1.5, 1.75, 2.0]
            .iter()
            .map(|f| entry.eps0 * f)
            .collect();
        let owned = pts.to_vec();
        let (engine, build_ms) = timed(move || {
            MetricDbscan::builder(owned, Euclidean)
                .rbar(entry.eps0 / 2.0)
                .build()
                .expect("build")
        });
        let (_, sweep_ms) = timed(|| {
            for &eps in &sweep {
                let params = DbscanParams::new(eps, MIN_PTS).expect("params");
                engine.exact(&params).expect("exact");
            }
        });
        let (_, rebuild_ms) = timed(|| {
            for &eps in &sweep {
                let fresh = MetricDbscan::builder(pts.to_vec(), Euclidean)
                    .rbar(eps / 2.0)
                    .build()
                    .expect("build");
                let params = DbscanParams::new(eps, MIN_PTS).expect("params");
                fresh.exact(&params).expect("exact");
            }
        });
        // Same sweep again on the same engine: every (ε, MinPts) is now
        // resident in the fragment LRU.
        let (_, warm_ms) = timed(|| {
            for &eps in &sweep {
                let params = DbscanParams::new(eps, MIN_PTS).expect("params");
                let run = engine.exact(&params).expect("exact");
                assert!(run.report.cache_hit, "warm sweep must hit the LRU");
            }
        });
        row!(entry.name, "reuse", format!("{:.2}", build_ms + sweep_ms));
        row!(entry.name, "rebuild", format!("{rebuild_ms:.2}"));
        row!(entry.name, "reuse_warm_lru", format!("{warm_ms:.2}"));
    }

    println!("\n# ablation 5: §3.2 cover-tree pipeline vs Algorithm 1 pipeline (all-inlier data)");
    row!("dataset", "pipeline", "total_ms", "clusters");
    for entry in registry::low_dim_suite(&args).into_iter().take(2) {
        // strip the outliers: §3.2 assumes the whole input doubles
        let labels = entry.data.labels().expect("labeled");
        let pts: Vec<Vec<f64>> = entry
            .data
            .points()
            .iter()
            .zip(labels)
            .filter(|(_, &l)| l >= 0)
            .map(|(p, _)| p.clone())
            .collect();
        let eps = entry.eps0;
        let owned = pts.clone();
        let (engine, build_ms) = timed(move || {
            MetricDbscan::builder(owned, Euclidean)
                .rbar(eps / 2.0)
                .build()
                .expect("build")
        });
        let params = DbscanParams::new(eps, MIN_PTS).expect("params");
        let (res, alg1_ms) = timed(|| engine.exact(&params).expect("exact"));
        row!(
            entry.name,
            "algorithm1",
            format!("{:.2}", build_ms + alg1_ms),
            res.clustering.num_clusters()
        );
        let (res, tree_ms) = timed(|| engine.covertree(&params).expect("covertree"));
        row!(
            entry.name,
            "covertree_3.2",
            format!("{tree_ms:.2}"),
            res.clustering.num_clusters()
        );
        // The whole-input tree is engine-resident now: a second ε costs
        // only the net extraction + steps.
        let params2 = DbscanParams::new(eps * 1.5, MIN_PTS).expect("params");
        let (res, tree2_ms) = timed(|| engine.covertree(&params2).expect("covertree"));
        assert!(res.report.cache_hit, "second covertree run reuses the tree");
        row!(
            entry.name,
            "covertree_3.2_reused",
            format!("{tree2_ms:.2}"),
            res.clustering.num_clusters()
        );
    }
}
