//! Ablations of the design choices DESIGN.md calls out (not a paper
//! table; motivated by §3.3 and Remarks 3/5):
//!
//! 1. dense-ball shortcut on/off (Step 1's amortization, Lemma 4);
//! 2. cover-tree BCP vs brute-force BCP (Step 2, Lemma 5);
//! 3. early termination on/off in the merge;
//! 4. index reuse vs rebuild across an ε sweep (Remark 5);
//! 5. the §3.2 cover-tree pipeline vs the Algorithm 1 pipeline on
//!    all-inlier data (Theorem 1's regime).

use mdbscan_bench::registry;
use mdbscan_bench::{row, timed, HarnessArgs};
use mdbscan_core::{exact_dbscan_covertree, DbscanParams, ExactConfig, GonzalezIndex};
use mdbscan_metric::{CountingMetric, Euclidean};

const MIN_PTS: usize = 10;

fn main() {
    let args = HarnessArgs::parse();

    println!("# ablation 1-3: ExactConfig toggles");
    row!(
        "dataset",
        "dense_shortcut",
        "cover_tree",
        "early_term",
        "solve_ms",
        "dist_evals",
        "clusters"
    );
    let entries = registry::shape_suite(&args)
        .into_iter()
        .chain(registry::high_dim_suite(&args).into_iter().take(2));
    for entry in entries {
        let pts = entry.data.points();
        let eps = entry.eps0;
        let params = DbscanParams::new(eps, MIN_PTS).expect("params");
        for dense in [true, false] {
            for tree in [true, false] {
                for early in [true, false] {
                    let cfg = ExactConfig {
                        dense_shortcut: dense,
                        cover_tree_merge: tree,
                        early_termination: early,
                        ..ExactConfig::default()
                    };
                    let m = CountingMetric::new(Euclidean);
                    let idx = GonzalezIndex::build(pts, &m, eps / 2.0).expect("build");
                    m.reset();
                    let ((c, _stats), ms) = timed(|| idx.exact_with(&params, &cfg).expect("exact"));
                    row!(
                        entry.name,
                        dense,
                        tree,
                        early,
                        format!("{ms:.2}"),
                        m.count(),
                        c.num_clusters()
                    );
                }
            }
        }
    }

    println!("\n# ablation 4: index reuse vs rebuild across an eps sweep (Remark 5)");
    row!("dataset", "mode", "total_ms");
    for entry in registry::high_dim_suite(&args).into_iter().take(2) {
        let pts = entry.data.points();
        let sweep: Vec<f64> = [1.0, 1.25, 1.5, 1.75, 2.0]
            .iter()
            .map(|f| entry.eps0 * f)
            .collect();
        let (_, reuse_ms) = timed(|| {
            let idx = GonzalezIndex::build(pts, &Euclidean, entry.eps0 / 2.0).expect("build");
            for &eps in &sweep {
                let params = DbscanParams::new(eps, MIN_PTS).expect("params");
                idx.exact(&params).expect("exact");
            }
        });
        let (_, rebuild_ms) = timed(|| {
            for &eps in &sweep {
                let idx = GonzalezIndex::build(pts, &Euclidean, eps / 2.0).expect("build");
                let params = DbscanParams::new(eps, MIN_PTS).expect("params");
                idx.exact(&params).expect("exact");
            }
        });
        row!(entry.name, "reuse", format!("{reuse_ms:.2}"));
        row!(entry.name, "rebuild", format!("{rebuild_ms:.2}"));
    }

    println!("\n# ablation 5: §3.2 cover-tree pipeline vs Algorithm 1 pipeline (all-inlier data)");
    row!("dataset", "pipeline", "total_ms", "clusters");
    for entry in registry::low_dim_suite(&args).into_iter().take(2) {
        // strip the outliers: §3.2 assumes the whole input doubles
        let labels = entry.data.labels().expect("labeled");
        let pts: Vec<Vec<f64>> = entry
            .data
            .points()
            .iter()
            .zip(labels)
            .filter(|(_, &l)| l >= 0)
            .map(|(p, _)| p.clone())
            .collect();
        let eps = entry.eps0;
        let (res, alg1_ms) = timed(|| {
            let idx = GonzalezIndex::build(&pts, &Euclidean, eps / 2.0).expect("build");
            idx.exact(&DbscanParams::new(eps, MIN_PTS).expect("params"))
                .expect("exact")
        });
        row!(
            entry.name,
            "algorithm1",
            format!("{alg1_ms:.2}"),
            res.num_clusters()
        );
        let ((res, _stats), tree_ms) =
            timed(|| exact_dbscan_covertree(&pts, &Euclidean, eps, MIN_PTS).expect("covertree"));
        row!(
            entry.name,
            "covertree_3.2",
            format!("{tree_ms:.2}"),
            res.num_clusters()
        );
    }
}
