//! Table 4: streaming clustering quality (ARI/AMI) of Algorithm 3
//! (ρ = 0.5) against DBStream, D-Stream, evoStream, and BICO, over the
//! registry datasets re-played as streams plus the drifting session
//! stream at 1 % / 10 % / 50 % / 100 % prefixes.
//!
//! D-Stream is grid-based: on the high-dimensional sets every point lands
//! in its own cell and everything is noise — the paper's `-` entries,
//! reproduced rather than patched.

use mdbscan_baselines::{Bico, DStream, DbStream, EvoStream};
use mdbscan_bench::registry;
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_core::{ApproxParams, StreamingApproxDbscan};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::Euclidean;

const MIN_PTS: usize = 10;

fn main() {
    let args = HarnessArgs::parse();
    row!("dataset", "algorithm", "ari", "ami", "clusters");
    let entries = registry::low_dim_suite(&args)
        .into_iter()
        .chain(registry::high_dim_suite(&args))
        .chain(registry::pcam_lsun(&args));
    for entry in entries {
        let pts = entry.data.points().to_vec();
        let truth = entry.data.labels().expect("labeled").to_vec();
        run_all(entry.name, &pts, &truth, entry.eps0, &args);
    }
    // Session stream prefixes.
    let stream = registry::session_stream(&args);
    for pct in [1.0, 10.0, 50.0, 100.0] {
        let prefix = stream.prefix(pct);
        let pts: Vec<Vec<f64>> = prefix.iter().collect();
        let truth = prefix.labels();
        let name = format!("Session {pct}%");
        run_all(&name, &pts, &truth, 2.0, &args);
    }
}

fn run_all(name: &str, pts: &[Vec<f64>], truth: &[i32], eps0: f64, args: &HarnessArgs) {
    let true_k = truth
        .iter()
        .filter(|&&l| l >= 0)
        .collect::<std::collections::HashSet<_>>()
        .len()
        .max(1);
    let score = |alg: &str, pred: Vec<i32>, k: usize| {
        row!(
            name,
            alg,
            format!("{:.3}", adjusted_rand_index(truth, &pred)),
            format!("{:.3}", adjusted_mutual_info(truth, &pred)),
            k
        );
    };

    let params = ApproxParams::new(eps0, MIN_PTS, 0.5).expect("params");
    let (c, _) =
        StreamingApproxDbscan::run(&Euclidean, &params, || pts.iter().cloned()).expect("stream");
    score("Ours(streaming)", c.assignments(), c.num_clusters());

    let c = DbStream::fit(pts, eps0, 0.0005, 0.1);
    score("DBStream", c.assignments(), c.num_clusters());

    // D-Stream's grid needs coarser cells than ε and an occupancy-scaled
    // density threshold; it still collapses on high-dimensional data (the
    // paper's `-` entries) because cell keys there are unique per point.
    let dense = (pts.len() as f64 / 400.0).max(4.0);
    let c = DStream::fit(pts, 2.5 * eps0, 0.0, dense, dense / 3.0);
    score("D-Stream", c.assignments(), c.num_clusters());

    let c = EvoStream::fit(pts, eps0, 0.0005, true_k, args.seed);
    score("evoStream", c.assignments(), c.num_clusters());

    let c = Bico::fit(pts, true_k, (200 * true_k).min(pts.len()), args.seed);
    score("BICO", c.assignments(), c.num_clusters());
}
