//! Table 2: how much of the exact pipeline's runtime the radius-guided
//! Gonzalez pre-processing (Algorithm 1) takes — the quantity that makes
//! index reuse (Remark 5) worthwhile. The paper reports 60–99 %.
//!
//! Also prints the measured speedup of re-solving at a second ε on the
//! shared index versus rebuilding from scratch, which is the practical
//! payoff the table argues for.

use mdbscan_bench::registry;
use mdbscan_bench::{row, timed, HarnessArgs};
use mdbscan_core::{DbscanParams, ExactConfig, GonzalezIndex};
use mdbscan_metric::{Euclidean, Levenshtein};

const MIN_PTS: usize = 10;

fn main() {
    let args = HarnessArgs::parse();
    row!(
        "dataset",
        "gonzalez_ms",
        "total_ms",
        "proportion",
        "retune_ms",
        "retune_speedup"
    );
    for entry in registry::low_dim_suite(&args)
        .into_iter()
        .chain(registry::shape_suite(&args).into_iter().skip(1))
        .chain(registry::high_dim_suite(&args))
    {
        let pts = entry.data.points();
        let eps = entry.eps0;
        let (idx, gonzalez_ms) =
            timed(|| GonzalezIndex::build(pts, &Euclidean, eps / 2.0).expect("build"));
        let params = DbscanParams::new(eps, MIN_PTS).expect("params");
        let (_r, solve_ms) = timed(|| {
            idx.exact_with(&params, &ExactConfig::default())
                .expect("exact")
        });
        let total = gonzalez_ms + solve_ms;
        // Re-tuning at a larger ε reuses the same net (Remark 5).
        let params2 = DbscanParams::new(eps * 1.5, MIN_PTS).expect("params");
        let (_r2, retune_ms) = timed(|| idx.exact(&params2).expect("exact"));
        row!(
            entry.name,
            format!("{gonzalez_ms:.2}"),
            format!("{total:.2}"),
            format!("{:.0}%", 100.0 * gonzalez_ms / total),
            format!("{retune_ms:.2}"),
            format!("{:.1}x", total / retune_ms.max(1e-6))
        );
    }
    // Text rows (COLA / AGNews / MRPC analogues), as in the paper's table.
    for entry in registry::text_suite(&args).into_iter().take(3) {
        let pts = entry.data.points();
        let eps = entry.eps0;
        let (idx, gonzalez_ms) =
            timed(|| GonzalezIndex::build(pts, &Levenshtein, eps / 2.0).expect("build"));
        let params = DbscanParams::new(eps, MIN_PTS).expect("params");
        let (_r, solve_ms) = timed(|| idx.exact(&params).expect("exact"));
        let total = gonzalez_ms + solve_ms;
        let params2 = DbscanParams::new(eps * 1.5, MIN_PTS).expect("params");
        let (_r2, retune_ms) = timed(|| idx.exact(&params2).expect("exact"));
        row!(
            entry.name,
            format!("{gonzalez_ms:.2}"),
            format!("{total:.2}"),
            format!("{:.0}%", 100.0 * gonzalez_ms / total),
            format!("{retune_ms:.2}"),
            format!("{:.1}x", total / retune_ms.max(1e-6))
        );
    }
}
