//! Table 2: how much of the exact pipeline's runtime the radius-guided
//! Gonzalez pre-processing (Algorithm 1) takes — the quantity that makes
//! engine reuse (Remark 5) worthwhile. The paper reports 60–99 %.
//!
//! Also prints the measured speedup of re-solving at a second ε on the
//! shared `MetricDbscan` engine versus rebuilding from scratch, plus the
//! PR-2 payoff: repeating that second ε hits the fragment-tree LRU
//! (`retune_warm_ms`).

use mdbscan_bench::registry;
use mdbscan_bench::{row, timed, HarnessArgs};
use mdbscan_core::{DbscanParams, ExactConfig, MetricDbscan};
use mdbscan_metric::{Euclidean, Levenshtein};

const MIN_PTS: usize = 10;

fn run_entry<P: Sync + Send + Clone, M: mdbscan_metric::BatchMetric<P>>(
    name: &str,
    pts: &[P],
    metric: M,
    eps: f64,
) {
    let owned = pts.to_vec();
    let (engine, gonzalez_ms) = timed(move || {
        MetricDbscan::builder(owned, metric)
            .rbar(eps / 2.0)
            .build()
            .expect("build")
    });
    let params = DbscanParams::new(eps, MIN_PTS).expect("params");
    let (_r, solve_ms) = timed(|| {
        engine
            .exact_with(&params, &ExactConfig::default())
            .expect("exact")
    });
    let total = gonzalez_ms + solve_ms;
    // Re-tuning at a larger ε reuses the same net (Remark 5)...
    let params2 = DbscanParams::new(eps * 1.5, MIN_PTS).expect("params");
    let (_r2, retune_ms) = timed(|| engine.exact(&params2).expect("exact"));
    // ... and repeating it replays the cached Step-1/2 artifacts (PR 2).
    let (r3, retune_warm_ms) = timed(|| engine.exact(&params2).expect("exact"));
    assert!(
        r3.report.cache_hit,
        "repeat probe must hit the fragment LRU"
    );
    row!(
        name,
        format!("{gonzalez_ms:.2}"),
        format!("{total:.2}"),
        format!("{:.0}%", 100.0 * gonzalez_ms / total),
        format!("{retune_ms:.2}"),
        format!("{:.1}x", total / retune_ms.max(1e-6)),
        format!("{retune_warm_ms:.2}")
    );
}

fn main() {
    let args = HarnessArgs::parse();
    row!(
        "dataset",
        "gonzalez_ms",
        "total_ms",
        "proportion",
        "retune_ms",
        "retune_speedup",
        "retune_warm_ms"
    );
    for entry in registry::low_dim_suite(&args)
        .into_iter()
        .chain(registry::shape_suite(&args).into_iter().skip(1))
        .chain(registry::high_dim_suite(&args))
    {
        run_entry(entry.name, entry.data.points(), Euclidean, entry.eps0);
    }
    // Text rows (COLA / AGNews / MRPC analogues), as in the paper's table.
    for entry in registry::text_suite(&args).into_iter().take(3) {
        run_entry(entry.name, entry.data.points(), Levenshtein, entry.eps0);
    }
}
