//! Table 3: ARI/AMI of exact DBSCAN and 0.5-approximate DBSCAN against the
//! non-DBSCAN baselines — DP-means, BICO, Density-Peak, Mean-shift — on
//! the shape sets, the image-class sets, their §5.1 noisy-duplication
//! variants, and the PCAM/LSUN-class sets.
//!
//! Baseline parameters follow §5.4: DP-means' λ from the k-center
//! initialization; BICO gets the true k (an advantage the paper concedes
//! to it); Density-Peak gets `d_c = ε` and the true k; Mean-shift gets
//! bandwidth 2ε. The quadratic baselines are skipped above a size cap on
//! the large sets (the paper's `*` = memory overflow).

use mdbscan_baselines::{density_peak, dp_means, lambda_from_kcenter, mean_shift, Bico};
use mdbscan_bench::registry::{self, VecEntry};
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_core::{approx_dbscan, exact_dbscan};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::Euclidean;

const MIN_PTS: usize = 10;

fn main() {
    let args = HarnessArgs::parse();
    row!("dataset", "algorithm", "ari", "ami", "clusters");
    let mut entries: Vec<VecEntry> = registry::shape_suite(&args);
    let high = registry::high_dim_suite(&args);
    entries.push(registry::noisy_variant(&args, &high[0], 80)); // MNIST_noisy
    entries.push(registry::noisy_variant(&args, &high[1], 81)); // Fashion_noisy
    let mut high = high;
    entries.append(&mut high);
    entries.append(&mut registry::pcam_lsun(&args));

    for entry in &entries {
        let pts = entry.data.points();
        let truth = entry.data.labels().expect("labeled");
        let true_k = truth
            .iter()
            .filter(|&&l| l >= 0)
            .collect::<std::collections::HashSet<_>>()
            .len()
            .max(1);
        let eps = entry.eps0;
        let score = |alg: &str, pred: Vec<i32>, k: usize| {
            row!(
                entry.name,
                alg,
                format!("{:.3}", adjusted_rand_index(truth, &pred)),
                format!("{:.3}", adjusted_mutual_info(truth, &pred)),
                k
            );
        };

        let c = exact_dbscan(pts, &Euclidean, eps, MIN_PTS).expect("exact");
        score("DBSCAN(exact)", c.assignments(), c.num_clusters());
        let c = approx_dbscan(pts, &Euclidean, eps, MIN_PTS, 0.5).expect("approx");
        score("0.5-approx", c.assignments(), c.num_clusters());

        let lambda = lambda_from_kcenter(pts, true_k, 0);
        let c = dp_means(pts, lambda, 50);
        score("DP-means", c.assignments(), c.num_clusters());

        let c = Bico::fit(pts, true_k, (200 * true_k).min(pts.len()), args.seed);
        score("BICO", c.assignments(), c.num_clusters());

        // O(n²)-memory/time baselines: cap like the paper's `*` rows.
        if pts.len() <= args.sized(3000) {
            let c = density_peak(pts, &Euclidean, eps, true_k);
            score("Density-peak", c.assignments(), c.num_clusters());
            let c = mean_shift(pts, 2.0 * eps, 30);
            score("Meanshift", c.assignments(), c.num_clusters());
        } else {
            row!(entry.name, "Density-peak", "*", "*", "-");
            row!(entry.name, "Meanshift", "*", "*", "-");
        }
    }
}
