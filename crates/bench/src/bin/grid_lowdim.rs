//! Grid candidate index vs. the generic pruned path on low-dimensional
//! Euclidean workloads: for d ∈ {2, 3} and n ∈ {20k, 200k} (scaled by
//! `--scale`), runs the exact solver cold over a `VectorBlock<f64>`
//! twice — once generic (net-anchored pruning) and once with
//! [`CandidateIndex::Grid`] — asserting bit-identical labels, and
//! writes `BENCH_grid.json` with wall-clock, per-phase distance
//! evaluations, and the grid's candidate ledger.
//!
//! Headline (asserted at `--scale ≥ 1`): on the 2-D n = 200k config
//! the grid cuts Step-1 + adjacency distance evaluations at least 5×.
//! CI runs this at a small `--scale` (where only the equivalence
//! assertions apply) and smoke-parses the JSON.

use mdbscan_bench::{timed, HarnessArgs};
use mdbscan_core::{CandidateIndex, DbscanParams, ExactConfig, ExactStats, MetricDbscan};
use mdbscan_datagen::{lowdim_blobs, LowDimSpec};
use mdbscan_metric::VectorBlock;

const EPS: f64 = 1.0;
const MIN_PTS: usize = 15;
const RBAR: f64 = 0.5;

/// Cluster spread holding the r̄-ball occupancy near 5 points as `n`
/// scales (≈ constant density): below `MIN_PTS`, so the dense-ball
/// shortcut stays out of the way and Step 1 actually counts neighbors —
/// the regime the grid (and the paper's adjacency scans) are about —
/// while ε-balls still hold ≈ 4·(2^dim/4) × that, keeping cluster
/// interiors core.
fn cluster_std(dim: usize, n: usize) -> f64 {
    let base = if dim == 2 { 8.0 } else { 4.0 };
    base * (n as f64 / 200_000.0).powf(1.0 / dim as f64)
}

struct Side {
    wall_ms: f64,
    stats: ExactStats,
}

struct Config {
    dim: usize,
    n: usize,
    generic: Side,
    grid: Side,
    front_reduction: f64,
}

/// Fronts the headline measures: the candidate-generation phases the
/// grid replaces (Step 1 + adjacency).
fn front(stats: &ExactStats) -> u64 {
    stats.adjacency_evals + stats.label_evals
}

fn run_side(block: &VectorBlock<f64>, index: CandidateIndex) -> (Side, Vec<i32>) {
    // cache_capacity(0): every run recomputes everything (grid build
    // included), so wall-clock and counters compare cold against cold.
    let engine = MetricDbscan::builder(block.ids(), block.clone())
        .rbar(RBAR)
        .cache_capacity(0)
        .candidate_index(index)
        .build()
        .expect("engine");
    let cfg = ExactConfig {
        parallel: engine.parallel(),
        count_distance_evals: true,
        ..ExactConfig::default()
    };
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let (run, wall_ms) = timed(|| engine.exact_with(&params, &cfg).expect("exact"));
    let stats = *run.report.exact_stats().expect("exact stats");
    (Side { wall_ms, stats }, run.clustering.assignments())
}

fn main() {
    let args = HarnessArgs::parse();
    let mut configs: Vec<Config> = Vec::new();
    println!(
        "dim\tn\tpath\twall_ms\tadjacency_evals\tlabel_evals\ttotal_evals\tcells_probed\temitted\trejected"
    );
    for dim in [2usize, 3] {
        for base in [20_000usize, 200_000] {
            let n = args.sized(base);
            let rows = lowdim_blobs(
                &LowDimSpec {
                    n,
                    dim,
                    clusters: 10,
                    std: cluster_std(dim, n),
                    noise_frac: 0.01,
                    extent: 100.0,
                },
                args.seed,
            )
            .into_parts()
            .0;
            let block = VectorBlock::<f64>::from_rows(&rows);
            let (generic, labels_generic) = run_side(&block, CandidateIndex::Generic);
            let (grid, labels_grid) = run_side(&block, CandidateIndex::Grid);
            assert_eq!(
                labels_generic, labels_grid,
                "grid labels diverged from generic at d={dim}, n={n}"
            );
            assert!(
                grid.stats.candidates.cells_probed > 0,
                "grid path must actually probe cells at d={dim}, n={n}"
            );
            let front_reduction = front(&generic.stats) as f64 / front(&grid.stats).max(1) as f64;
            for (path, side) in [("generic", &generic), ("grid", &grid)] {
                let c = side.stats.candidates;
                mdbscan_bench::row!(
                    dim,
                    rows.len(),
                    path,
                    format!("{:.1}", side.wall_ms),
                    side.stats.adjacency_evals,
                    side.stats.label_evals,
                    side.stats.distance_evals,
                    c.cells_probed,
                    c.candidates_emitted,
                    c.candidates_rejected
                );
            }
            configs.push(Config {
                dim,
                n: rows.len(),
                generic,
                grid,
                front_reduction,
            });
        }
    }

    // Headline: at full scale the 2-D 200k config must show ≥ 5× fewer
    // Step-1 + adjacency evaluations through the grid.
    let headline = configs
        .iter()
        .filter(|c| c.dim == 2)
        .max_by_key(|c| c.n)
        .expect("configs is non-empty");
    let full_scale = args.scale >= 1.0;
    if full_scale {
        assert!(
            headline.front_reduction >= 5.0,
            "grid front-eval reduction {:.2}× < 5× at d=2, n={} \
             (generic {} vs grid {})",
            headline.front_reduction,
            headline.n,
            front(&headline.generic.stats),
            front(&headline.grid.stats),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"grid\",\n");
    json.push_str(&format!(
        "  \"eps\": {EPS}, \"min_pts\": {MIN_PTS}, \"rbar\": {RBAR}, \"scale\": {},\n",
        args.scale
    ));
    json.push_str(&format!(
        "  \"headline\": {{\"dim\": 2, \"n\": {}, \"front_reduction\": {:.2}, \"asserted_5x\": {full_scale}}},\n",
        headline.n, headline.front_reduction
    ));
    json.push_str("  \"configs\": [\n");
    for (i, c) in configs.iter().enumerate() {
        let sep = if i + 1 == configs.len() { "" } else { "," };
        let g = &c.generic.stats;
        let r = &c.grid.stats;
        json.push_str(&format!(
            "    {{\"dim\": {}, \"n\": {}, \
             \"generic\": {{\"wall_ms\": {:.1}, \"front_evals\": {}, \"total_evals\": {}}}, \
             \"grid\": {{\"wall_ms\": {:.1}, \"front_evals\": {}, \"total_evals\": {}, \
             \"cells_probed\": {}, \"candidates_emitted\": {}, \"candidates_rejected\": {}}}, \
             \"front_reduction\": {:.2}, \"labels_match\": true}}{sep}\n",
            c.dim,
            c.n,
            c.generic.wall_ms,
            front(g),
            g.distance_evals,
            c.grid.wall_ms,
            front(r),
            r.distance_evals,
            r.candidates.cells_probed,
            r.candidates.candidates_emitted,
            r.candidates.candidates_rejected,
            c.front_reduction,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    print!("{json}");
    mdbscan_bench::write_json("BENCH_grid.json", &json);
    eprintln!("wrote BENCH_grid.json ({} configs)", configs.len());
}
