//! Online-ingest throughput for the dynamic engine: seeds a
//! radius-guided engine with the first batch of a blob stream, ingests
//! the rest in fixed 1k-point batches (one epoch each), and writes
//! `BENCH_ingest.json` with per-epoch wall-clock, points/sec, center
//! growth, and distance-evaluation counts (the paper's `t_dis` — the
//! cost an epoch's first-fit insertions actually pay; snapshot
//! publication itself evaluates nothing).
//!
//! Along the way it asserts the ingest determinism contract at bench
//! scale: the fully ingested engine's exact labels are byte-identical
//! to a fresh radius-guided build over the same sequence. It then
//! times `save`/`load` of the grown engine and writes
//! `BENCH_persist.json` (artifact size, save/load wall-clock, the
//! zero-evaluations-on-load assertion, and the warm-cache query after
//! the reload). CI runs this at a small `--scale` and smoke-parses
//! both JSONs alongside `BENCH_distance_evals.json`.

use mdbscan_bench::{timed, HarnessArgs};
use mdbscan_core::{DbscanParams, MetricDbscan, NetStrategy};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::{CountingMetric, Euclidean};

const EPS: f64 = 1.0;
const MIN_PTS: usize = 10;
const RBAR: f64 = 0.5;
const BATCH: usize = 1000;

struct Epoch {
    epoch: u64,
    points: usize,
    centers: usize,
    new_centers: usize,
    ingest_ms: f64,
    points_per_sec: f64,
    distance_evals: u64,
}

fn main() {
    let args = HarnessArgs::parse();
    let n = args.sized(20_000).max(2 * BATCH);
    let pts = blobs(
        &BlobSpec {
            n,
            dim: 2,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
        },
        args.seed,
    )
    .into_parts()
    .0;

    let build_engine = |points: Vec<Vec<f64>>| {
        MetricDbscan::builder(points, CountingMetric::new(Euclidean))
            .rbar(RBAR)
            .net_strategy(NetStrategy::RadiusGuided)
            .build()
            .expect("build engine")
    };
    let engine = build_engine(pts[..BATCH].to_vec());
    engine.metric().reset();

    let mut epochs: Vec<Epoch> = Vec::new();
    let mut cursor = BATCH;
    let t_total = std::time::Instant::now();
    while cursor < pts.len() {
        let end = (cursor + BATCH).min(pts.len());
        let batch = pts[cursor..end].to_vec();
        let (report, ingest_ms) = timed(|| engine.ingest(batch).expect("ingest failed"));
        let distance_evals = engine.metric().reset();
        epochs.push(Epoch {
            epoch: report.epoch,
            points: report.num_points,
            centers: report.num_centers,
            new_centers: report.new_centers,
            ingest_ms,
            points_per_sec: report.added_points as f64 / (ingest_ms / 1e3).max(1e-9),
            distance_evals,
        });
        cursor = end;
    }
    let total_secs = t_total.elapsed().as_secs_f64();
    let ingested = pts.len() - BATCH;
    let total_points_per_sec = ingested as f64 / total_secs.max(1e-9);

    // Determinism smoke at bench scale: grown engine == fresh build.
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let (grown, query_ms) = timed(|| engine.exact(&params).expect("exact on grown engine"));
    let fresh = build_engine(pts.clone());
    let fresh_run = fresh.exact(&params).expect("exact on fresh engine");
    let labels_match = grown.clustering == fresh_run.clustering;
    assert!(
        labels_match,
        "ingest-then-query diverged from the fresh radius-guided build"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest\",\n");
    json.push_str(&format!(
        "  \"n\": {}, \"seed_points\": {BATCH}, \"batch\": {BATCH},\n",
        pts.len(), // spec n plus the generator's appended outliers
    ));
    json.push_str(&format!(
        "  \"eps\": {EPS}, \"min_pts\": {MIN_PTS}, \"rbar\": {RBAR},\n"
    ));
    json.push_str(&format!(
        "  \"total_points_per_sec\": {total_points_per_sec:.1},\n"
    ));
    json.push_str(&format!("  \"final_query_ms\": {query_ms:.2},\n"));
    json.push_str(&format!(
        "  \"labels_match_fresh_build\": {labels_match},\n"
    ));
    json.push_str("  \"epochs\": [\n");
    for (i, e) in epochs.iter().enumerate() {
        let sep = if i + 1 == epochs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"epoch\": {}, \"points\": {}, \"centers\": {}, \"new_centers\": {}, \"ingest_ms\": {:.2}, \"points_per_sec\": {:.1}, \"distance_evals\": {}}}{sep}\n",
            e.epoch, e.points, e.centers, e.new_centers, e.ingest_ms, e.points_per_sec,
            e.distance_evals,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    print!("{json}");
    mdbscan_bench::write_json("BENCH_ingest.json", &json);
    eprintln!("wrote BENCH_ingest.json ({} epochs)", epochs.len());

    // Persistence: save the grown engine (fragment cache warm from the
    // query above), reload it, and prove the restart is free in t_dis
    // and invisible in the answers.
    let mut artifact = std::env::temp_dir();
    artifact.push(format!("mdbscan_ingest_bench_{}.mdb", std::process::id()));
    let (_, save_ms) = timed(|| engine.save(&artifact).expect("save engine artifact"));
    let artifact_bytes = std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0);
    let (loaded, load_ms) = timed(|| {
        MetricDbscan::load(&artifact, CountingMetric::new(Euclidean)).expect("load engine artifact")
    });
    std::fs::remove_file(&artifact).ok();
    let load_evals = loaded.metric().count();
    assert_eq!(load_evals, 0, "load must perform zero distance evaluations");
    let (warm, warm_query_ms) = timed(|| loaded.exact(&params).expect("exact on loaded engine"));
    assert!(
        warm.report.cache_hit,
        "the reloaded engine must hit the persisted fragment cache"
    );
    let labels_match_after_load = warm.clustering == grown.clustering;
    assert!(
        labels_match_after_load,
        "reloaded engine diverged from the engine that saved it"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"persist\",\n");
    json.push_str(&format!(
        "  \"n\": {}, \"eps\": {EPS}, \"min_pts\": {MIN_PTS}, \"rbar\": {RBAR},\n",
        pts.len(),
    ));
    json.push_str(&format!("  \"artifact_bytes\": {artifact_bytes},\n"));
    json.push_str(&format!("  \"save_ms\": {save_ms:.2},\n"));
    json.push_str(&format!("  \"load_ms\": {load_ms:.2},\n"));
    json.push_str(&format!("  \"load_distance_evals\": {load_evals},\n"));
    json.push_str(&format!("  \"warm_query_ms\": {warm_query_ms:.2},\n"));
    json.push_str(&format!(
        "  \"warm_query_cache_hit\": {},\n",
        warm.report.cache_hit
    ));
    json.push_str(&format!(
        "  \"labels_match_after_load\": {labels_match_after_load}\n"
    ));
    json.push_str("}\n");
    print!("{json}");
    mdbscan_bench::write_json("BENCH_persist.json", &json);
    eprintln!("wrote BENCH_persist.json ({artifact_bytes} artifact bytes)");
}
