//! Serving-tier benchmark: latency/throughput of the socket path, then
//! a deterministic chaos phase driven by a seeded
//! [`mdbscan_serve::FaultPlan`].
//!
//! Prints a TSV of per-phase figures and writes `BENCH_serving.json`
//! (atomically) with query latency p50/p99 (ms), throughput (qps),
//! shed counts, isolated panics, and worker resurrections.
//!
//! The chaos phase interleaves dropped and stalling connections,
//! queries whose metric detonates mid-solver (PanicMetric), worker
//! kills (test-ops CrashWorker), ingests, and checkpoint saves with
//! plan-scheduled torn copies — then asserts the survival contract:
//! every request got a correct reply or a typed error, post-chaos
//! socket labels are byte-identical to direct engine calls, and
//! `load_latest` warm-starts from the checkpoint directory.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mdbscan_bench::{row, timed, write_json, HarnessArgs};
use mdbscan_core::{DbscanParams, MetricDbscan, PointLabel};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::Euclidean;
use mdbscan_serve::{
    protocol, Client, ClientError, ConnFault, FaultPlan, PanicMetric, RetryPolicy, SaveFault,
    ServeConfig, Server, Solver,
};

const EPS: f64 = 1.5;
const MIN_PTS: usize = 5;
const RHO: f64 = 1.0;
const RBAR: f64 = 0.5;

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn labels_key(labels: &[PointLabel]) -> Vec<(u8, u32)> {
    labels
        .iter()
        .map(|l| match l {
            PointLabel::Noise => (0u8, 0u32),
            PointLabel::Core(c) => (1, *c),
            PointLabel::Border(c) => (2, *c),
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let n = args.sized(600);
    let dataset = blobs(
        &BlobSpec {
            n,
            dim: 8,
            ..BlobSpec::default()
        },
        args.seed,
    );
    let (metric, switch) = PanicMetric::new(Euclidean);
    let all_points: Vec<Vec<f64>> = dataset.points().to_vec();
    let (initial, reserve) = all_points.split_at(all_points.len() * 3 / 4);
    let engine = Arc::new(
        MetricDbscan::builder(initial.to_vec(), metric)
            .rbar(RBAR)
            .build()
            .expect("engine build"),
    );
    let ckpt_dir =
        std::env::temp_dir().join(format!("mdbscan_serving_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let server = Server::spawn(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_capacity: 2,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_millis(250),
            retry_after_ms: 5,
            checkpoint_dir: Some(ckpt_dir.clone()),
            test_ops: true,
        },
    )
    .expect("spawn server");
    let addr = server.local_addr();
    let mut client = Client::<Vec<f64>>::with_policy(
        addr,
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(30),
            timeout: Duration::from_secs(2),
            seed: args.seed,
        },
    );

    row!(
        "phase",
        "requests",
        "p50_ms",
        "p99_ms",
        "qps",
        "shed",
        "panics",
        "respawned"
    );

    // ---- clean phase: latency/throughput over rotating solvers ----
    let solvers = [
        Solver::Exact,
        Solver::Approx(RHO),
        Solver::CoverTree,
        Solver::Streaming(RHO),
    ];
    let queries = args.sized(60);
    let mut lat = Vec::with_capacity(queries);
    let t0 = Instant::now();
    for i in 0..queries {
        let solver = solvers[i % solvers.len()];
        let (reply, ms) = timed(|| client.query(solver, EPS, MIN_PTS).expect("clean query"));
        assert_eq!(reply.labels.len(), engine.num_points());
        lat.push(ms);
    }
    let clean_secs = t0.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    let (clean_p50, clean_p99) = (quantile(&lat, 0.50), quantile(&lat, 0.99));
    let clean_qps = queries as f64 / clean_secs.max(1e-9);
    row!(
        "clean",
        queries,
        format!("{clean_p50:.3}"),
        format!("{clean_p99:.3}"),
        format!("{clean_qps:.1}"),
        0,
        0,
        0
    );

    // Socket labels must be byte-identical to the in-process solver.
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let direct = engine.snapshot().exact(&params).unwrap();
    let wire = client.query(Solver::Exact, EPS, MIN_PTS).unwrap();
    assert_eq!(
        labels_key(wire.labels.as_slice()),
        labels_key(direct.clustering.labels()),
        "socket labels diverged from direct engine call"
    );

    // ---- overload probe: saturate both workers, burst past the queue ----
    let stallers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                // Connect and send nothing: occupies a worker for one
                // read deadline, no longer.
                let s = TcpStream::connect(addr);
                std::thread::sleep(Duration::from_millis(200));
                drop(s);
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30)); // let workers pick the stallers up
                                                   // Open the whole burst before reading any reply: with both workers
                                                   // pinned, 2 connections fit the queue and the rest must shed.
    let mut burst: Vec<TcpStream> = (0..8)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect();
    let mut shed_seen = 0u64;
    for s in &mut burst {
        let _ = s.set_read_timeout(Some(Duration::from_millis(400)));
        let _ = protocol::write_frame(s, &protocol::Request::<Vec<f64>>::Stats.encode());
        if let Ok(Some(payload)) = protocol::read_frame(s) {
            if matches!(
                protocol::Response::decode(&payload),
                Ok(protocol::Response::Overloaded { .. })
            ) {
                shed_seen += 1;
            }
        }
    }
    drop(burst);
    for h in stallers {
        let _ = h.join();
    }
    assert!(shed_seen > 0, "overload burst produced no typed sheds");

    // ---- chaos phase: seeded faults, every reply correct or typed ----
    let mut plan = FaultPlan::new(args.seed);
    let rounds = args.sized(40);
    let mut reserve_iter = reserve.chunks(8).cycle();
    let mut chaos_lat = Vec::with_capacity(rounds);
    let mut typed_errors = 0u64;
    let mut crash_rounds = 0u64;
    let t1 = Instant::now();
    for round in 0..rounds {
        match plan.next_conn_fault() {
            ConnFault::None => {}
            ConnFault::Drop => {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(&[0xDE, 0xAD]); // torn frame header
                }
            }
            ConnFault::Stall(d) => {
                std::thread::spawn(move || {
                    let s = TcpStream::connect(addr);
                    std::thread::sleep(d);
                    drop(s);
                });
            }
        }
        if round % 7 == 3 {
            // Deliberate worker kill; the supervisor must respawn.
            let _ = client.crash_worker();
            crash_rounds += 1;
        }
        if let Some(after) = plan.next_query_panic() {
            switch.arm(after);
        }
        let solver = solvers[round % solvers.len()];
        let (outcome, ms) = timed(|| client.query(solver, EPS, MIN_PTS));
        switch.disarm();
        chaos_lat.push(ms);
        match outcome {
            Ok(reply) => assert_eq!(reply.labels.len(), engine.num_points()),
            // The armed metric panicked server-side (isolated) or the
            // burst shed us — both are typed, both are the contract.
            Err(ClientError::Internal(_))
            | Err(ClientError::Overloaded { .. })
            | Err(ClientError::Io(_)) => typed_errors += 1,
            Err(other) => panic!("chaos round {round}: untyped failure {other}"),
        }
        if round % 5 == 2 {
            let batch = reserve_iter.next().unwrap().to_vec();
            client.ingest(batch).expect("chaos ingest");
        }
        if round % 6 == 4 {
            let seq = client.save_checkpoint().expect("chaos save");
            let path = mdbscan_persist::checkpoint_path(&ckpt_dir, seq);
            let bytes = std::fs::read(&path).expect("read fresh checkpoint");
            if let SaveFault::TornAt(_) = plan.next_save_fault(bytes.len()) {
                // Simulate external corruption of the *newest*
                // checkpoint: truncate it at a plan-chosen byte.
                let cut = plan.torn_offset(bytes.len());
                std::fs::write(&path, &bytes[..cut]).expect("tear checkpoint");
            }
        }
    }
    let chaos_secs = t1.elapsed().as_secs_f64();
    chaos_lat.sort_by(f64::total_cmp);
    let (chaos_p50, chaos_p99) = (quantile(&chaos_lat, 0.50), quantile(&chaos_lat, 0.99));
    let chaos_qps = rounds as f64 / chaos_secs.max(1e-9);

    // ---- post-chaos verification ----
    // 1. Socket still serves, byte-identical to the engine.
    let direct = engine.snapshot().exact(&params).unwrap();
    let wire = client
        .query(Solver::Exact, EPS, MIN_PTS)
        .expect("post-chaos query");
    assert_eq!(
        labels_key(wire.labels.as_slice()),
        labels_key(direct.clustering.labels()),
        "post-chaos socket labels diverged"
    );
    // 2. The (possibly torn) checkpoint directory still warm-starts.
    let (restored, seq) = MetricDbscan::<Vec<f64>, Euclidean>::load_latest(&ckpt_dir, Euclidean)
        .expect("load_latest");
    let restored_run = restored.snapshot().exact(&params).unwrap();
    assert_eq!(
        restored_run.clustering.num_clusters() > 0,
        direct.clustering.num_clusters() > 0,
        "restored checkpoint {seq} answers nonsense"
    );

    let stats = server.stats();
    assert!(stats.panics > 0, "chaos armed no panics — plan drifted?");
    assert!(
        crash_rounds == 0 || stats.workers_respawned > 0,
        "workers were killed but never resurrected"
    );
    row!(
        "chaos",
        rounds,
        format!("{chaos_p50:.3}"),
        format!("{chaos_p99:.3}"),
        format!("{chaos_qps:.1}"),
        stats.shed,
        stats.panics,
        stats.workers_respawned
    );

    let shed_rate = stats.shed as f64 / (stats.served + stats.shed).max(1) as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serving\",\n",
            "  \"n\": {},\n",
            "  \"clean\": {{\"queries\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"qps\": {:.2}}},\n",
            "  \"chaos\": {{\"rounds\": {}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"qps\": {:.2}, \"typed_errors\": {}}},\n",
            "  \"shed\": {},\n",
            "  \"shed_rate\": {:.4},\n",
            "  \"panics_isolated\": {},\n",
            "  \"workers_respawned\": {},\n",
            "  \"served\": {}\n",
            "}}\n"
        ),
        n,
        queries,
        clean_p50,
        clean_p99,
        clean_qps,
        rounds,
        chaos_p50,
        chaos_p99,
        chaos_qps,
        typed_errors,
        stats.shed,
        shed_rate,
        stats.panics,
        stats.workers_respawned,
        stats.served,
    );
    write_json("BENCH_serving.json", &json);
    eprintln!("wrote BENCH_serving.json (shed {shed_seen} in burst, {typed_errors} typed errors in chaos)");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
