//! Figure 4: clustering quality (ARI and AMI against ground truth) of the
//! ρ-approximate solver at ρ ∈ {0.1, 0.5, 1, 2} with fixed ε, next to the
//! exact solver's score, on the four high-dimensional image-class
//! datasets (MNIST, USPS HW, Fashion MNIST, CIFAR 10 stand-ins).
//!
//! ρ = 1 shares its net resolution with the exact solver (r̄ = ε/2), so
//! those two run on ONE `MetricDbscan` engine; the other ρ values need a
//! finer net and build their own.

use mdbscan_bench::registry;
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_core::{ApproxParams, DbscanParams, MetricDbscan};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::Euclidean;

const MIN_PTS: usize = 10;
const RHOS: [f64; 4] = [0.1, 0.5, 1.0, 2.0];

fn main() {
    let args = HarnessArgs::parse();
    row!("dataset", "algorithm", "rho", "ari", "ami", "clusters");
    for entry in registry::high_dim_suite(&args) {
        let pts = entry.data.points();
        let truth = entry.data.labels().expect("registry data is labeled");
        // Run in the fragmenting regime (ε below the cluster percolation
        // threshold): this is where the real image sets live — DBSCAN
        // splits digits into several density modes — and where the choice
        // of ρ visibly changes what gets merged, as in the paper's Fig. 4.
        let eps = entry.eps0 * 0.75;

        // One engine at r̄ = ε/2 serves the exact solver and ρ = 1.
        let shared = MetricDbscan::builder(pts.to_vec(), Euclidean)
            .rbar(eps / 2.0)
            .build()
            .expect("build");
        let exact = shared
            .exact(&DbscanParams::new(eps, MIN_PTS).expect("params"))
            .expect("exact")
            .clustering;
        let pred = exact.assignments();
        row!(
            entry.name,
            "Exact",
            "-",
            format!("{:.4}", adjusted_rand_index(truth, &pred)),
            format!("{:.4}", adjusted_mutual_info(truth, &pred)),
            exact.num_clusters()
        );

        for rho in RHOS {
            let params = ApproxParams::new(eps, MIN_PTS, rho).expect("params");
            // Share only when the solver's natural resolution r̄ = ρε/2
            // coincides with the shared net (ρ = 1); every other ρ builds
            // its own net so the figure measures each configuration at
            // the paper's prescribed resolution.
            let approx = if (shared.rbar() - params.rbar()).abs() < 1e-12 {
                shared.approx(&params).expect("approx").clustering
            } else {
                MetricDbscan::builder(pts.to_vec(), Euclidean)
                    .rbar(params.rbar())
                    .build()
                    .expect("build")
                    .approx(&params)
                    .expect("approx")
                    .clustering
            };
            let pred = approx.assignments();
            row!(
                entry.name,
                "Approx",
                rho,
                format!("{:.4}", adjusted_rand_index(truth, &pred)),
                format!("{:.4}", adjusted_mutual_info(truth, &pred)),
                approx.num_clusters()
            );
        }
    }
}
