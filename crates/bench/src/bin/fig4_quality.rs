//! Figure 4: clustering quality (ARI and AMI against ground truth) of the
//! ρ-approximate solver at ρ ∈ {0.1, 0.5, 1, 2} with fixed ε, next to the
//! exact solver's score, on the four high-dimensional image-class
//! datasets (MNIST, USPS HW, Fashion MNIST, CIFAR 10 stand-ins).

use mdbscan_bench::registry;
use mdbscan_bench::{row, HarnessArgs};
use mdbscan_core::{ApproxParams, DbscanParams, GonzalezIndex};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::Euclidean;

const MIN_PTS: usize = 10;
const RHOS: [f64; 4] = [0.1, 0.5, 1.0, 2.0];

fn main() {
    let args = HarnessArgs::parse();
    row!("dataset", "algorithm", "rho", "ari", "ami", "clusters");
    for entry in registry::high_dim_suite(&args) {
        let pts = entry.data.points();
        let truth = entry.data.labels().expect("registry data is labeled");
        // Run in the fragmenting regime (ε below the cluster percolation
        // threshold): this is where the real image sets live — DBSCAN
        // splits digits into several density modes — and where the choice
        // of ρ visibly changes what gets merged, as in the paper's Fig. 4.
        let eps = entry.eps0 * 0.75;

        let exact = {
            let idx = GonzalezIndex::build(pts, &Euclidean, eps / 2.0).expect("build");
            idx.exact(&DbscanParams::new(eps, MIN_PTS).expect("params"))
                .expect("exact")
        };
        let pred = exact.assignments();
        row!(
            entry.name,
            "Exact",
            "-",
            format!("{:.4}", adjusted_rand_index(truth, &pred)),
            format!("{:.4}", adjusted_mutual_info(truth, &pred)),
            exact.num_clusters()
        );

        for rho in RHOS {
            let params = ApproxParams::new(eps, MIN_PTS, rho).expect("params");
            let idx = GonzalezIndex::build(pts, &Euclidean, params.rbar()).expect("build");
            let approx = idx.approx(&params).expect("approx");
            let pred = approx.assignments();
            row!(
                entry.name,
                "Approx",
                rho,
                format!("{:.4}", adjusted_rand_index(truth, &pred)),
                format!("{:.4}", adjusted_mutual_info(truth, &pred)),
                approx.num_clusters()
            );
        }
    }
}
