//! Shared harness plumbing: CLI flags, timing, and the dataset registry
//! that maps every Table 1 dataset class to its synthetic stand-in
//! (DESIGN.md §3 records the substitutions).
//!
//! Every binary prints a TSV table to stdout — the same rows/series as the
//! corresponding figure or table in the paper — and accepts:
//!
//! * `--seed <u64>` (default 42): generator seed;
//! * `--scale <f64>` (default 1.0): multiplies dataset sizes;
//! * `--full`: paper-scale sizes (≈ `--scale 10`, plus the million-scale
//!   panels) — expect long runtimes on a laptop.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod registry;

use std::time::Instant;

/// Parsed harness flags.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// RNG seed for the generators.
    pub seed: u64,
    /// Size multiplier.
    pub scale: f64,
    /// Paper-scale run.
    pub full: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args()`; unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut out = Self {
            seed: 42,
            scale: 1.0,
            full: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    i += 1;
                    out.seed = args[i].parse().expect("--seed takes a u64");
                }
                "--scale" => {
                    i += 1;
                    out.scale = args[i].parse().expect("--scale takes a float");
                }
                "--full" => out.full = true,
                "--help" | "-h" => {
                    eprintln!("flags: --seed <u64> --scale <f64> --full");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        if out.full {
            out.scale *= 10.0;
        }
        out
    }

    /// Applies the scale factor to a base size (at least 10 points).
    pub fn sized(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(10)
    }
}

/// Writes a `BENCH_*.json` artifact crash-consistently (atomic
/// temp-file + rename via `mdbscan_persist::write_atomic`), so a
/// bench killed mid-write can never leave a torn JSON for the CI
/// smoke-parser to choke on. Panics with a readable message on I/O
/// failure, like the bare `fs::write` it replaces.
pub fn write_json(path: &str, json: &str) {
    mdbscan_persist::write_atomic(path, json.as_bytes())
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Runs `f` and returns `(result, milliseconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

/// Prints a TSV row.
#[macro_export]
macro_rules! row {
    ($($x:expr),+ $(,)?) => {{
        let cells: Vec<String> = vec![$(format!("{}", $x)),+];
        println!("{}", cells.join("\t"));
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_measures_something() {
        let (v, ms) = timed(|| (0..100_000).sum::<u64>());
        assert_eq!(v, 4999950000);
        assert!(ms >= 0.0);
    }

    #[test]
    fn sized_scales() {
        let a = HarnessArgs {
            seed: 1,
            scale: 0.5,
            full: false,
        };
        assert_eq!(a.sized(1000), 500);
        assert_eq!(a.sized(2), 10, "floor at 10");
    }
}
