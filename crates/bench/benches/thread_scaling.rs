//! Thread-scaling of the exact pipeline: the same 100k-point blob set
//! solved at 1/2/4/8 worker threads. Labels are asserted identical to
//! the 1-thread run before any timing — speed may vary with the core
//! count, correctness may not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdbscan_core::{DbscanParams, ExactConfig, MetricDbscan, ParallelConfig};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::Euclidean;
use std::hint::black_box;
use std::sync::Arc;

const N: usize = 100_000;
const EPS: f64 = 1.0;
const MIN_PTS: usize = 10;

fn dataset() -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n: N,
            dim: 2,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
        },
        42,
    )
    .into_parts()
    .0
}

fn solve(pts: &Arc<[Vec<f64>]>, threads: usize) -> mdbscan_core::Clustering {
    let parallel = ParallelConfig::new(threads);
    // Arc::clone keeps the timed path free of the 100k-point deep copy.
    let engine = MetricDbscan::builder(Arc::clone(pts), Euclidean)
        .rbar(EPS / 2.0)
        .parallel(parallel)
        .build()
        .expect("build");
    let cfg = ExactConfig {
        parallel,
        ..ExactConfig::default()
    };
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    engine.exact_with(&params, &cfg).expect("exact").clustering
}

fn bench_thread_scaling(c: &mut Criterion) {
    let pts: Arc<[Vec<f64>]> = dataset().into();
    let baseline = solve(&pts, 1);
    let mut g = c.benchmark_group("exact_100k_threads");
    g.sample_size(5);
    g.throughput(Throughput::Elements(N as u64));
    for threads in [1usize, 2, 4, 8] {
        let labels = solve(&pts, threads);
        assert_eq!(
            labels.labels(),
            baseline.labels(),
            "labels diverged at {threads} threads"
        );
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| solve(black_box(&pts), t))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_thread_scaling
}
criterion_main!(benches);
