//! Cover-tree construction and query microbenches (Claim 1: near-constant
//! query cost on doubling data, vs the linear brute-force scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdbscan_covertree::CoverTree;
use mdbscan_datagen::{manifold_clusters, ManifoldSpec};
use mdbscan_metric::{Euclidean, Metric};
use std::hint::black_box;

fn data(n: usize) -> Vec<Vec<f64>> {
    manifold_clusters(
        &ManifoldSpec {
            n,
            ambient_dim: 32,
            intrinsic_dim: 4,
            clusters: 5,
            outlier_frac: 0.0,
            ..Default::default()
        },
        7,
    )
    .into_parts()
    .0
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("covertree_build");
    for n in [500usize, 2000] {
        let pts = data(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| CoverTree::build(black_box(pts), &Euclidean))
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let pts = data(4000);
    let tree = CoverTree::build(&pts, &Euclidean);
    let q = pts[17].iter().map(|x| x + 0.01).collect::<Vec<f64>>();
    let mut g = c.benchmark_group("covertree_query");
    g.bench_function("nearest_tree", |b| {
        b.iter(|| tree.nearest(black_box(&q)).expect("non-empty"))
    });
    g.bench_function("nearest_brute", |b| {
        b.iter(|| {
            pts.iter()
                .map(|p| Euclidean.distance(p, black_box(&q)))
                .fold(f64::INFINITY, f64::min)
        })
    });
    g.bench_function("range_eps", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            tree.range(black_box(&q), 2.0, &mut out)
        })
    });
    g.bench_function("any_within", |b| {
        b.iter(|| tree.any_within(black_box(&q), 2.0))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_query
}
criterion_main!(benches);
