//! Algorithm 1 (radius-guided Gonzalez) scaling: Lemma 1 says the
//! iteration count depends on (Δ/r̄)^D + z, not on n, so total work should
//! scale linearly in n at fixed geometry — this bench plots that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_kcenter::RadiusGuidedNet;
use mdbscan_metric::Euclidean;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    // Lemma 1's linearity in n needs the net to saturate: |E| is bounded
    // by the geometry (Δ/r̄)^D, not by n — so the data must actually have
    // low doubling dimension. 2-d blobs saturate at ≈180 centers by
    // n = 1000; past that, doubling n should double the time.
    let mut g = c.benchmark_group("alg1_scaling_n");
    for n in [1000usize, 2000, 4000, 8000] {
        let pts = blobs(
            &BlobSpec {
                n,
                dim: 2,
                clusters: 5,
                std: 1.0,
                center_box: 20.0,
                outlier_frac: 0.01,
            },
            3,
        )
        .into_parts()
        .0;
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| RadiusGuidedNet::build(black_box(pts), &Euclidean, 1.0))
        });
    }
    g.finish();
}

fn bench_rbar(c: &mut Criterion) {
    let pts = blobs(
        &BlobSpec {
            n: 4000,
            dim: 2,
            clusters: 5,
            std: 1.0,
            center_box: 20.0,
            outlier_frac: 0.01,
        },
        3,
    )
    .into_parts()
    .0;
    let mut g = c.benchmark_group("alg1_vs_rbar");
    for rbar in [0.25f64, 0.5, 1.0, 2.0] {
        g.bench_with_input(BenchmarkId::from_parameter(rbar), &rbar, |b, &rbar| {
            b.iter(|| RadiusGuidedNet::build(black_box(&pts), &Euclidean, rbar))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_scaling, bench_rbar
}
criterion_main!(benches);
