//! Microbenches for the cost units underneath everything: distance
//! evaluations (full vs early-abandoned) and the quality metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use mdbscan_eval::{adjusted_mutual_info, adjusted_rand_index};
use mdbscan_metric::{Euclidean, Levenshtein, Metric};
use std::hint::black_box;

fn bench_distances(c: &mut Criterion) {
    let a: Vec<f64> = (0..784).map(|i| (i as f64).sin()).collect();
    let b: Vec<f64> = (0..784).map(|i| (i as f64).cos()).collect();
    let mut g = c.benchmark_group("euclidean_784d");
    g.bench_function("full", |bch| {
        bch.iter(|| Euclidean.distance(black_box(&a), black_box(&b)))
    });
    g.bench_function("leq_tight_bound", |bch| {
        bch.iter(|| Euclidean.distance_leq(black_box(&a), black_box(&b), 1.0))
    });
    g.finish();

    let s1 = "the quick brown fox jumps over the lazy dog".to_string();
    let s2 = "the quick brown fax jumped over a lazy dig".to_string();
    let mut g = c.benchmark_group("levenshtein_44ch");
    g.bench_function("full", |bch| {
        bch.iter(|| Levenshtein.distance(black_box(&s1), black_box(&s2)))
    });
    g.bench_function("banded_k3", |bch| {
        bch.iter(|| Levenshtein.distance_leq(black_box(&s1), black_box(&s2), 3.0))
    });
    g.finish();
}

fn bench_quality(c: &mut Criterion) {
    let n = 20_000;
    let a: Vec<i32> = (0..n).map(|i| i % 10).collect();
    let b: Vec<i32> = (0..n).map(|i| (i / 7) % 12).collect();
    let mut g = c.benchmark_group("quality_metrics_20k");
    g.sample_size(20);
    g.bench_function("ari", |bch| {
        bch.iter(|| adjusted_rand_index(black_box(&a), black_box(&b)))
    });
    g.bench_function("ami", |bch| {
        bch.iter(|| adjusted_mutual_info(black_box(&a), black_box(&b)))
    });
    g.finish();
}

criterion_group!(benches, bench_distances, bench_quality);
criterion_main!(benches);
