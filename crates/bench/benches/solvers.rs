//! End-to-end solver comparison on one dataset — the Fig. 3 headline as a
//! Criterion bench: Our_Exact and Our_Approx vs the quadratic original,
//! plus the streaming engine.

use criterion::{criterion_group, criterion_main, Criterion};
use mdbscan_baselines::original_dbscan;
use mdbscan_core::{approx_dbscan, exact_dbscan, ApproxParams, StreamingApproxDbscan};
use mdbscan_datagen::moons;
use mdbscan_metric::Euclidean;
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let ds = moons(2000, 0.06, 0.02, 42);
    let pts = ds.points().to_vec();
    let eps = 0.12;
    let min_pts = 10;
    let mut g = c.benchmark_group("solvers_moons2k");
    g.sample_size(10);
    g.bench_function("our_exact", |b| {
        b.iter(|| exact_dbscan(black_box(&pts), &Euclidean, eps, min_pts).expect("exact"))
    });
    g.bench_function("our_approx_rho0.5", |b| {
        b.iter(|| approx_dbscan(black_box(&pts), &Euclidean, eps, min_pts, 0.5).expect("approx"))
    });
    g.bench_function("original_dbscan", |b| {
        b.iter(|| original_dbscan(black_box(&pts), &Euclidean, eps, min_pts))
    });
    g.bench_function("streaming_rho0.5", |b| {
        let params = ApproxParams::new(eps, min_pts, 0.5).expect("params");
        b.iter(|| {
            StreamingApproxDbscan::run(&Euclidean, &params, || pts.iter().cloned()).expect("stream")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
