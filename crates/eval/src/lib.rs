//! External clustering-quality metrics.
//!
//! The paper's quality experiments (Fig. 4, Tables 3–4) score clusterings
//! against ground truth with the **Adjusted Rand Index** (Hubert & Arabie
//! 1985) and **Adjusted Mutual Information** (Vinh, Epps, Bailey 2009).
//! Both are chance-corrected: a random labeling scores ≈ 0 regardless of
//! cluster-count imbalance, and 1 means identical partitions.
//!
//! Conventions match the de-facto standard (scikit-learn, which the
//! original paper's pipeline uses):
//!
//! * labels are arbitrary `i32`; **noise (`-1`) is treated as a regular
//!   label value**, i.e. all noise points form one group — pass the
//!   assignment vectors produced by `Clustering::assignments` directly;
//! * AMI uses the *exact* hypergeometric expected mutual information and
//!   arithmetic-mean normalization;
//! * degenerate cases follow scikit-learn: two trivial (single-cluster)
//!   partitions score 1.0, a trivial vs. non-trivial partition scores 0.0
//!   under NMI, etc.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod contingency;
mod info;
mod rand_index;
mod vmeasure;

pub use contingency::ContingencyTable;
pub use info::{
    adjusted_mutual_info, entropy, expected_mutual_info, mutual_info, normalized_mutual_info,
};
pub use rand_index::adjusted_rand_index;
pub use vmeasure::{completeness, fowlkes_mallows, homogeneity, v_measure};
