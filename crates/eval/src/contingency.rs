//! Contingency table between two labelings.

use std::collections::HashMap;

/// A sparse contingency table: joint counts `n_ij` of points labeled `i`
/// by the first labeling and `j` by the second, with marginals.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    /// Joint counts, keyed by (row-class index, col-class index).
    cells: HashMap<(u32, u32), u64>,
    /// Row marginals `a_i`.
    rows: Vec<u64>,
    /// Column marginals `b_j`.
    cols: Vec<u64>,
    /// Total number of points `n`.
    n: u64,
}

impl ContingencyTable {
    /// Builds the table. Panics if the two labelings differ in length.
    /// Label values are arbitrary `i32` (noise `-1` is just another
    /// value).
    pub fn new(a: &[i32], b: &[i32]) -> Self {
        assert_eq!(a.len(), b.len(), "labelings must have equal length");
        let mut row_ids: HashMap<i32, u32> = HashMap::new();
        let mut col_ids: HashMap<i32, u32> = HashMap::new();
        let mut cells: HashMap<(u32, u32), u64> = HashMap::new();
        let mut rows: Vec<u64> = Vec::new();
        let mut cols: Vec<u64> = Vec::new();
        for (&x, &y) in a.iter().zip(b.iter()) {
            let next_r = row_ids.len() as u32;
            let i = *row_ids.entry(x).or_insert(next_r);
            if i as usize == rows.len() {
                rows.push(0);
            }
            let next_c = col_ids.len() as u32;
            let j = *col_ids.entry(y).or_insert(next_c);
            if j as usize == cols.len() {
                cols.push(0);
            }
            rows[i as usize] += 1;
            cols[j as usize] += 1;
            *cells.entry((i, j)).or_insert(0) += 1;
        }
        Self {
            cells,
            rows,
            cols,
            n: a.len() as u64,
        }
    }

    /// Total number of points.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Row marginals (first labeling's cluster sizes).
    pub fn row_marginals(&self) -> &[u64] {
        &self.rows
    }

    /// Column marginals (second labeling's cluster sizes).
    pub fn col_marginals(&self) -> &[u64] {
        &self.cols
    }

    /// Iterates the non-zero joint counts `(i, j, n_ij)`.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.cells.iter().map(|(&(i, j), &c)| (i, j, c))
    }

    /// Number of distinct classes in the first labeling.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of distinct classes in the second labeling.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_marginals_and_cells() {
        let a = [0, 0, 1, 2, -1];
        let b = [5, 5, 5, 7, 7];
        let t = ContingencyTable::new(&a, &b);
        assert_eq!(t.n(), 5);
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_cols(), 2);
        let mut rows = t.row_marginals().to_vec();
        rows.sort_unstable();
        assert_eq!(rows, vec![1, 1, 1, 2]);
        let mut cols = t.col_marginals().to_vec();
        cols.sort_unstable();
        assert_eq!(cols, vec![2, 3]);
        let total: u64 = t.cells().map(|(_, _, c)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn empty_labelings() {
        let t = ContingencyTable::new(&[], &[]);
        assert_eq!(t.n(), 0);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.cells().count(), 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = ContingencyTable::new(&[0], &[0, 1]);
    }
}
