//! Information-theoretic clustering metrics: MI, expected MI under the
//! hypergeometric null model, AMI, and NMI.

use crate::contingency::ContingencyTable;

/// Shannon entropy (nats) of a labeling.
pub fn entropy(labels: &[i32]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<i32, u64> = std::collections::HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let n = labels.len() as f64;
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Mutual information (nats) between two labelings:
/// `I = Σ_ij (n_ij/n) ln(n·n_ij / (a_i·b_j))`.
pub fn mutual_info(a: &[i32], b: &[i32]) -> f64 {
    let t = ContingencyTable::new(a, b);
    mutual_info_of(&t)
}

fn mutual_info_of(t: &ContingencyTable) -> f64 {
    let n = t.n() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let rows = t.row_marginals();
    let cols = t.col_marginals();
    let mut s = 0.0;
    for (i, j, nij) in t.cells() {
        let nij = nij as f64;
        s += (nij / n) * ((n * nij) / (rows[i as usize] as f64 * cols[j as usize] as f64)).ln();
    }
    s.max(0.0)
}

/// Exact expected mutual information between random labelings with the
/// observed marginals, under the permutation (hypergeometric) model of
/// Vinh et al. 2009:
///
/// `EMI = Σ_i Σ_j Σ_{n_ij} (n_ij/n)·ln(n·n_ij/(a_i b_j)) · P_hyp(n_ij)`.
///
/// Cost `O(Σ_ij min(a_i, b_j))` with an `O(n)` log-factorial table.
pub fn expected_mutual_info(a: &[i32], b: &[i32]) -> f64 {
    let t = ContingencyTable::new(a, b);
    expected_mutual_info_of(&t)
}

fn expected_mutual_info_of(t: &ContingencyTable) -> f64 {
    let n = t.n();
    if n == 0 {
        return 0.0;
    }
    // ln k! table, built iteratively (exact enough for n in the millions:
    // each entry is a sum of ≤ n ln's with ~1 ulp error each).
    let mut lf = vec![0.0f64; (n + 1) as usize];
    for k in 2..=n {
        lf[k as usize] = lf[(k - 1) as usize] + (k as f64).ln();
    }
    let nf = n as f64;
    let mut emi = 0.0;
    for &ai in t.row_marginals() {
        for &bj in t.col_marginals() {
            let lo = (ai + bj).saturating_sub(n).max(1); // max(1, a_i + b_j − n)
            let hi = ai.min(bj);
            for nij in lo..=hi {
                let nij_f = nij as f64;
                let term = (nij_f / nf) * ((nf * nij_f) / (ai as f64 * bj as f64)).ln();
                // ln P_hyp(nij)
                let lp = lf[ai as usize]
                    + lf[bj as usize]
                    + lf[(n - ai) as usize]
                    + lf[(n - bj) as usize]
                    - lf[n as usize]
                    - lf[nij as usize]
                    - lf[(ai - nij) as usize]
                    - lf[(bj - nij) as usize]
                    - lf[(n + nij - ai - bj) as usize]; // nij ≥ ai+bj−n keeps this non-negative
                emi += term * lp.exp();
            }
        }
    }
    emi
}

/// Adjusted Mutual Information (Vinh et al. 2009), arithmetic-mean
/// normalization (scikit-learn's default):
///
/// `AMI = (I − E[I]) / (½(H(U) + H(V)) − E[I])`.
///
/// 1 for identical partitions, ≈ 0 for chance, can be negative.
///
/// ```
/// use mdbscan_eval::adjusted_mutual_info;
/// assert_eq!(adjusted_mutual_info(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
/// ```
pub fn adjusted_mutual_info(a: &[i32], b: &[i32]) -> f64 {
    let t = ContingencyTable::new(a, b);
    if t.n() == 0 {
        return 1.0;
    }
    // Both partitions a single cluster: defined as 1.0 (scikit-learn's
    // special case); everything else goes through the formula.
    if t.num_rows() <= 1 && t.num_cols() <= 1 {
        return 1.0;
    }
    let mi = mutual_info_of(&t);
    let emi = expected_mutual_info_of(&t);
    let hu = entropy(a);
    let hv = entropy(b);
    let mean = 0.5 * (hu + hv);
    let mut denom = mean - emi;
    // Guard against cancellation exactly like scikit-learn.
    if denom < 0.0 {
        denom = denom.min(-f64::EPSILON);
    } else {
        denom = denom.max(f64::EPSILON);
    }
    (mi - emi) / denom
}

/// Normalized Mutual Information, arithmetic-mean normalization:
/// `NMI = I / (½(H(U) + H(V)))`. Not chance-corrected (use AMI for
/// comparisons across cluster counts); kept because several baselines'
/// original papers report it.
pub fn normalized_mutual_info(a: &[i32], b: &[i32]) -> f64 {
    let t = ContingencyTable::new(a, b);
    if t.n() == 0 {
        return 1.0;
    }
    if t.num_rows() <= 1 && t.num_cols() <= 1 {
        return 1.0;
    }
    let hu = entropy(a);
    let hv = entropy(b);
    if hu == 0.0 || hv == 0.0 {
        return 0.0;
    }
    let mi = mutual_info_of(&t);
    if mi <= 0.0 {
        return 0.0;
    }
    mi / (0.5 * (hu + hv))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values from an independent reference implementation of the
    /// same formulas (pure-Python, math.lgamma-free log-factorial table).
    #[test]
    #[allow(clippy::approx_constant)] // golden values happen to contain ln 2
    fn golden_values() {
        type Case = (&'static [i32], &'static [i32], f64, f64, f64, f64);
        let cases: &[Case] = &[
            // (a, b, mi, emi, ami, nmi)
            (
                &[0, 0, 1, 1],
                &[0, 0, 1, 1],
                0.693147180560,
                0.231049060187,
                1.0,
                1.0,
            ),
            (&[0, 0, 1, 1], &[0, 1, 0, 1], 0.0, 0.231049060187, -0.5, 0.0),
            (
                &[0, 0, 1, 2],
                &[0, 0, 1, 1],
                0.693147180560,
                0.462098120373,
                0.571428571429,
                0.8,
            ),
            (
                &[0, 0, 1, 1, 2],
                &[0, 0, 1, 2, 2],
                0.777661295762,
                0.611305972428,
                0.375,
                0.737175493807,
            ),
            (
                &[0, 0, 0, 1, 1, 1, 2, 2, 2],
                &[0, 0, 1, 1, 2, 2, 0, 1, 2],
                0.308065413582,
                0.336299230550,
                -0.037037037037,
                0.280413223810,
            ),
            (
                &[-1, 0, 0, 1, 1, -1],
                &[0, 0, 0, 1, 1, 1],
                0.462098120373,
                0.277258872224,
                0.298792458171,
                0.515803742979,
            ),
            (
                &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2],
                &[0, 0, 1, 1, 1, 2, 2, 2, 2, 0],
                0.448077609162,
                0.287942481257,
                0.204262433631,
                0.418017911209,
            ),
        ];
        for (a, b, mi_w, emi_w, ami_w, nmi_w) in cases {
            assert!(
                (mutual_info(a, b) - mi_w).abs() < 1e-9,
                "MI({a:?},{b:?}) = {}, want {mi_w}",
                mutual_info(a, b)
            );
            assert!(
                (expected_mutual_info(a, b) - emi_w).abs() < 1e-9,
                "EMI({a:?},{b:?}) = {}, want {emi_w}",
                expected_mutual_info(a, b)
            );
            assert!(
                (adjusted_mutual_info(a, b) - ami_w).abs() < 1e-9,
                "AMI({a:?},{b:?}) = {}, want {ami_w}",
                adjusted_mutual_info(a, b)
            );
            assert!(
                (normalized_mutual_info(a, b) - nmi_w).abs() < 1e-9,
                "NMI({a:?},{b:?}) = {}, want {nmi_w}",
                normalized_mutual_info(a, b)
            );
        }
    }

    #[test]
    fn trivial_against_singletons_scores_zero() {
        // one cluster vs all singletons: MI = EMI = 0, so AMI = 0
        let a = [0, 0, 0, 0, 0, 0];
        let b = [0, 1, 2, 3, 4, 5];
        assert_eq!(adjusted_mutual_info(&a, &b), 0.0);
        assert_eq!(adjusted_mutual_info(&b, &a), 0.0);
        assert_eq!(normalized_mutual_info(&a, &b), 0.0);
        // both single-cluster: 1.0 by the special case
        assert_eq!(adjusted_mutual_info(&a, &[7, 7, 7, 7, 7, 7]), 1.0);
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[1, 1, 1]), 0.0);
        assert!((entropy(&[0, 1]) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = [0, 0, 1, 1, 2, 2, 2];
        assert_eq!(adjusted_mutual_info(&a, &a), 1.0);
        assert!((normalized_mutual_info(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [0, 1, 1, 2, 2, 0];
        assert!((adjusted_mutual_info(&a, &b) - adjusted_mutual_info(&b, &a)).abs() < 1e-12);
        assert!((mutual_info(&a, &b) - mutual_info(&b, &a)).abs() < 1e-12);
    }
}
