//! Entropy-based set-matching metrics: homogeneity, completeness,
//! V-measure (Rosenberg & Hirschberg 2007) and the Fowlkes–Mallows index.
//! Not used in the paper's headline tables (those are ARI/AMI) but
//! standard companions when reporting clustering quality, and cheap to
//! compute from the same contingency table.

use crate::contingency::ContingencyTable;

/// Conditional entropy `H(row | col)` in nats.
fn conditional_entropy_rows_given_cols(t: &ContingencyTable) -> f64 {
    let n = t.n() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let cols = t.col_marginals();
    let mut h = 0.0;
    for (_, j, nij) in t.cells() {
        let nij = nij as f64;
        let bj = cols[j as usize] as f64;
        h -= (nij / n) * (nij / bj).ln();
    }
    h
}

fn entropy_of_marginals(m: &[u64], n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    -m.iter()
        .map(|&c| {
            let p = c as f64 / n;
            if p > 0.0 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
}

/// Homogeneity: 1 iff every predicted cluster contains members of a
/// single ground-truth class. `truth` first, `pred` second (asymmetric).
pub fn homogeneity(truth: &[i32], pred: &[i32]) -> f64 {
    let t = ContingencyTable::new(truth, pred);
    let h_truth = entropy_of_marginals(t.row_marginals(), t.n());
    if h_truth == 0.0 {
        return 1.0;
    }
    1.0 - conditional_entropy_rows_given_cols(&t) / h_truth
}

/// Completeness: 1 iff every ground-truth class lands in a single
/// predicted cluster. Dual of [`homogeneity`].
pub fn completeness(truth: &[i32], pred: &[i32]) -> f64 {
    homogeneity(pred, truth)
}

/// V-measure: harmonic mean of homogeneity and completeness (the `beta=1`
/// form of Rosenberg & Hirschberg). Identical to NMI with arithmetic
/// normalization; exposed under its own name for report compatibility.
pub fn v_measure(truth: &[i32], pred: &[i32]) -> f64 {
    let h = homogeneity(truth, pred);
    let c = completeness(truth, pred);
    if h + c == 0.0 {
        return 0.0;
    }
    2.0 * h * c / (h + c)
}

/// Fowlkes–Mallows index: geometric mean of pairwise precision and
/// recall, `TP / √((TP+FP)(TP+FN))` over point pairs. 1 for identical
/// partitions; → 0 for unrelated ones as n grows.
pub fn fowlkes_mallows(truth: &[i32], pred: &[i32]) -> f64 {
    let t = ContingencyTable::new(truth, pred);
    if t.n() < 2 {
        return 1.0;
    }
    let c2 = |x: u64| x as f64 * (x as f64 - 1.0) / 2.0;
    let tp: f64 = t.cells().map(|(_, _, c)| c2(c)).sum();
    let pa: f64 = t.row_marginals().iter().map(|&x| c2(x)).sum();
    let pb: f64 = t.col_marginals().iter().map(|&x| c2(x)).sum();
    if pa == 0.0 || pb == 0.0 {
        return if pa == pb { 1.0 } else { 0.0 };
    }
    tp / (pa * pb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_degenerate_cases() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((homogeneity(&a, &a) - 1.0).abs() < 1e-12);
        assert!((completeness(&a, &a) - 1.0).abs() < 1e-12);
        assert!((v_measure(&a, &a) - 1.0).abs() < 1e-12);
        assert!((fowlkes_mallows(&a, &a) - 1.0).abs() < 1e-12);
        // relabeled
        let b = [5, 5, 3, 3, 9, 9];
        assert!((v_measure(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversplitting_is_homogeneous_not_complete() {
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let split = [0, 0, 1, 1, 2, 2, 3, 3];
        assert!((homogeneity(&truth, &split) - 1.0).abs() < 1e-12);
        assert!(completeness(&truth, &split) < 0.8);
        let v = v_measure(&truth, &split);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn merging_is_complete_not_homogeneous() {
        let truth = [0, 0, 1, 1, 2, 2];
        let merged = [0, 0, 0, 0, 1, 1];
        assert!((completeness(&truth, &merged) - 1.0).abs() < 1e-12);
        assert!(homogeneity(&truth, &merged) < 0.8);
    }

    /// sklearn golden values:
    /// homogeneity_score([0,0,1,1],[1,1,0,0]) = 1.0;
    /// v_measure_score([0,0,1,2],[0,0,1,1]) = 0.8 (== NMI arithmetic);
    /// fowlkes_mallows_score([0,0,1,1],[0,0,1,1]) = 1.0;
    /// fowlkes_mallows_score([0,0,1,1],[1,1,0,0]) = 1.0;
    /// fowlkes_mallows_score([0,0,0,0],[0,1,2,3]) = 0.0 (pb == 0).
    #[test]
    fn golden_values() {
        assert!((homogeneity(&[0, 0, 1, 1], &[1, 1, 0, 0]) - 1.0).abs() < 1e-12);
        assert!((v_measure(&[0, 0, 1, 2], &[0, 0, 1, 1]) - 0.8).abs() < 1e-9);
        assert!((fowlkes_mallows(&[0, 0, 1, 1], &[1, 1, 0, 0]) - 1.0).abs() < 1e-12);
        assert_eq!(fowlkes_mallows(&[0, 0, 0, 0], &[0, 1, 2, 3]), 0.0);
    }

    #[test]
    fn v_measure_equals_arithmetic_nmi() {
        let a = [0, 0, 1, 1, 2, 2, 0, 1];
        let b = [1, 1, 0, 2, 2, 2, 1, 0];
        let v = v_measure(&a, &b);
        let nmi = crate::normalized_mutual_info(&a, &b);
        assert!((v - nmi).abs() < 1e-9, "v={v} nmi={nmi}");
    }
}
