//! Adjusted Rand Index (Hubert & Arabie 1985).

use crate::contingency::ContingencyTable;

#[inline]
fn choose2(x: u64) -> f64 {
    (x as f64) * ((x as f64) - 1.0) / 2.0
}

/// The Adjusted Rand Index between two labelings.
///
/// `ARI = (Σ_ij C(n_ij,2) − E) / (½(Σ_i C(a_i,2) + Σ_j C(b_j,2)) − E)`
/// where `E = Σ_i C(a_i,2) · Σ_j C(b_j,2) / C(n,2)`.
///
/// Range `[-1, 1]`; 1 iff the partitions are identical, ≈ 0 for chance.
/// Two trivial partitions (or any degenerate 0/0) score 1.0, matching
/// scikit-learn.
///
/// ```
/// use mdbscan_eval::adjusted_rand_index;
/// assert_eq!(adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0]), 1.0);
/// assert!(adjusted_rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.0);
/// ```
pub fn adjusted_rand_index(a: &[i32], b: &[i32]) -> f64 {
    let t = ContingencyTable::new(a, b);
    if t.n() < 2 {
        return 1.0;
    }
    let sum_ij: f64 = t.cells().map(|(_, _, c)| choose2(c)).sum();
    let sum_a: f64 = t.row_marginals().iter().map(|&x| choose2(x)).sum();
    let sum_b: f64 = t.col_marginals().iter().map(|&x| choose2(x)).sum();
    let cn2 = choose2(t.n());
    let expected = sum_a * sum_b / cn2;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON * max_index.max(1.0) {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    /// Golden values from an independent reference implementation
    /// (see tools note in EXPERIMENTS.md).
    #[test]
    fn golden_values() {
        let cases: &[(&[i32], &[i32], f64)] = &[
            (&[0, 0, 1, 1], &[0, 0, 1, 1], 1.0),
            (&[0, 0, 1, 1], &[1, 1, 0, 0], 1.0),
            (&[0, 0, 1, 1], &[0, 1, 0, 1], -0.5),
            (&[0, 0, 1, 2], &[0, 0, 1, 1], 0.571428571429),
            (&[0, 0, 1, 1, 2], &[0, 0, 1, 2, 2], 0.375),
            (
                &[0, 0, 0, 1, 1, 1, 2, 2, 2],
                &[0, 0, 1, 1, 2, 2, 0, 1, 2],
                -0.037037037037,
            ),
            (&[-1, 0, 0, 1, 1, -1], &[0, 0, 0, 1, 1, 1], 0.242424242424),
            (&[0, 1, 2, 3, 4, 5], &[0, 0, 0, 0, 0, 0], 0.0),
            (
                &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2],
                &[0, 0, 1, 1, 1, 2, 2, 2, 2, 0],
                0.169741697417,
            ),
        ];
        for (a, b, want) in cases {
            let got = adjusted_rand_index(a, b);
            assert!(
                (got - want).abs() < 1e-9,
                "ARI({a:?}, {b:?}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn symmetry_and_trivia() {
        let a = [0, 0, 1, 1, 2, 2];
        let b = [0, 1, 1, 2, 2, 0];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < TOL);
        // both trivial
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[5, 5, 5]), 1.0);
        // single point
        assert_eq!(adjusted_rand_index(&[0], &[3]), 1.0);
        // all-singletons in both
        assert_eq!(adjusted_rand_index(&[0, 1, 2], &[5, 6, 7]), 1.0);
    }
}
