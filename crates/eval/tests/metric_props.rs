//! Property tests for the quality metrics.

use mdbscan_eval::{
    adjusted_mutual_info, adjusted_rand_index, entropy, mutual_info, normalized_mutual_info,
};
use proptest::prelude::*;

fn labelings() -> impl Strategy<Value = (Vec<i32>, Vec<i32>)> {
    (2usize..60).prop_flat_map(|n| {
        (
            prop::collection::vec(-1i32..5, n),
            prop::collection::vec(-1i32..5, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ari_bounds_and_symmetry((a, b) in labelings()) {
        let v = adjusted_rand_index(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "ARI out of range: {v}");
        prop_assert!((v - adjusted_rand_index(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn ari_one_on_identical(a in prop::collection::vec(-1i32..5, 2..60)) {
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ami_bounds_symmetry_identity((a, b) in labelings()) {
        let v = adjusted_mutual_info(&a, &b);
        prop_assert!(v <= 1.0 + 1e-9, "AMI > 1: {v}");
        prop_assert!((v - adjusted_mutual_info(&b, &a)).abs() < 1e-7);
        // Identity scores 1 except for the all-singletons degeneracy,
        // where EMI = MI = H and AMI is 0 by convention (as in sklearn).
        let all_distinct = {
            let mut s = a.clone();
            s.sort_unstable();
            s.windows(2).all(|w| w[0] != w[1])
        };
        // (The degenerate value itself is 0/ε — numerically unstable in
        // every implementation including sklearn — so don't pin it.)
        if !all_distinct {
            let self_v = adjusted_mutual_info(&a, &a);
            prop_assert!((self_v - 1.0).abs() < 1e-9, "identity: {self_v}");
        }
    }

    #[test]
    fn permutation_invariance((a, b) in labelings()) {
        // relabel b's classes by an injective map
        let b2: Vec<i32> = b.iter().map(|&x| x * 7 + 100).collect();
        prop_assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&a, &b2)).abs() < 1e-9);
        prop_assert!((adjusted_mutual_info(&a, &b) - adjusted_mutual_info(&a, &b2)).abs() < 1e-9);
        prop_assert!((normalized_mutual_info(&a, &b) - normalized_mutual_info(&a, &b2)).abs() < 1e-9);
    }

    #[test]
    fn mi_nonnegative_and_bounded_by_entropies((a, b) in labelings()) {
        let mi = mutual_info(&a, &b);
        prop_assert!(mi >= 0.0);
        prop_assert!(mi <= entropy(&a).min(entropy(&b)) + 1e-9);
    }

    #[test]
    fn nmi_in_unit_interval((a, b) in labelings()) {
        let v = normalized_mutual_info(&a, &b);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
    }
}
