//! The thread-count knob shared by every parallel phase.

/// How many worker threads a parallel phase may use.
///
/// The pipeline is deterministic **regardless** of this setting (ties
/// break on point/center index everywhere), so the default is the
/// machine's available parallelism; use [`ParallelConfig::sequential`]
/// to pin a run to one thread (e.g. for complexity accounting in units
/// of sequential distance evaluations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
}

impl ParallelConfig {
    /// Exactly `threads` workers; `0` means "use available parallelism".
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Self::default()
        } else {
            Self { threads }
        }
    }

    /// One worker: the classic sequential pipeline.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// The number of worker threads phases will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this config runs on a single thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The machine's available parallelism (1 when unknown).
    pub fn available() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: Self::available(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_means_available() {
        assert_eq!(
            ParallelConfig::new(0).threads(),
            ParallelConfig::available()
        );
        assert_eq!(ParallelConfig::new(3).threads(), 3);
        assert!(ParallelConfig::sequential().is_sequential());
        assert!(ParallelConfig::available() >= 1);
    }
}
