//! Deterministic data parallelism + flat storage for the metric-DBSCAN
//! pipeline.
//!
//! Every hot phase of the paper's algorithms — the Algorithm-1 distance
//! sweep, the center adjacency, Step 1 core counting, Step 2 BCP
//! testing, Step 3 border assignment, and the Algorithm-2 summary /
//! labeling loops — is embarrassingly parallel over points or centers.
//! This crate provides the two ingredients those phases share:
//!
//! * [`ParallelConfig`] plus a small family of scoped-thread executors
//!   ([`par_map_range`], [`par_map_ranges`]) and the persistent-worker
//!   sweep engine ([`sweep_rounds`]), all **deterministic by
//!   construction**: work is
//!   split into contiguous index chunks, per-chunk results are combined
//!   in chunk order, and ties always break toward the smaller index —
//!   so the output never depends on the thread count or on scheduling.
//!   With one thread (or small inputs) they degrade to the plain
//!   sequential loop with zero overhead.
//! * [`Csr`] — compressed sparse rows (offsets + one flat value array)
//!   replacing `Vec<Vec<u32>>` for cover sets, center adjacency, and
//!   core fragments. The innermost distance loops walk contiguous
//!   memory instead of chasing one heap allocation per center.
//! * [`ChunkedCsr`] — the append-only writer-side companion of [`Csr`]:
//!   rows grow by sealed per-batch chunks (historical chunks are never
//!   reallocated), and an epoch publish flattens into the flat [`Csr`]
//!   readers iterate.
//!
//! The executors use `std::thread::scope`, not a pool: the workspace
//! spawns threads only around substantial work (guarded by
//! `min_per_thread`), where the ~10µs spawn cost is noise next to the
//! distance evaluations inside.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chunked;
mod config;
mod csr;
mod executors;
mod persist;
mod sweeps;

pub use chunked::ChunkedCsr;
pub use config::ParallelConfig;
pub use csr::Csr;
pub use executors::{par_map_range, par_map_ranges, split_even, split_weighted, worker_count};
pub use sweeps::{sweep_rounds, SweepTask};
