//! Persistent-worker engine for iterative farthest-point sweeps.
//!
//! The Gonzalez greedies (vanilla and Algorithm 1) run thousands of
//! rounds of "update every point's distance against one new center,
//! then take an argmax". Spawning scoped threads per round would burn
//! more time in thread startup than in distance evaluations once the
//! per-round work shrinks — so this engine spawns each worker **once**,
//! hands it ownership of a contiguous chunk of the `(dist, assignment)`
//! arrays, and drives rounds over channels: broadcast task → per-chunk
//! update + local argmax → ordered reduction on the driver thread.
//!
//! Determinism: chunk boundaries depend only on `(n, threads)`, the
//! per-element update is element-local, and the argmax reduction scans
//! partials in chunk order with strict `>` — the smallest index among
//! maxima wins for every thread count, exactly like a sequential
//! left-to-right scan.

use std::sync::mpsc;
use std::thread;

use crate::executors::{split_even, worker_count};

/// One round's work order: sweep against `center` (stored at position
/// `center_pos` in the caller's center list). `init` seeds the arrays
/// instead of taking minima.
#[derive(Debug, Clone, Copy)]
pub struct SweepTask {
    /// Point index of the center to sweep against.
    pub center: usize,
    /// Its position in the caller's center list.
    pub center_pos: u32,
    /// First round: overwrite instead of min-merge.
    pub init: bool,
}

/// Runs rounds of chunk-parallel sweeps until `driver` stops.
///
/// Per round, `update(&task, offset, dist_chunk, assign_chunk)` runs on
/// every chunk (in parallel), then the global argmax of `dist` —
/// smallest index on ties — is handed to `driver`, which returns the
/// next task or `None` to stop. Returns the final `(dist, assignment)`.
///
/// `update` must be element-local (chunk `i` only reads/writes its own
/// elements) — that's what makes the chunking invisible in the result.
pub fn sweep_rounds<U, D>(
    n: usize,
    threads: usize,
    min_per_thread: usize,
    first: SweepTask,
    update: U,
    mut driver: D,
) -> (Vec<f64>, Vec<u32>)
where
    U: Fn(&SweepTask, usize, &mut [f64], &mut [u32]) + Sync,
    D: FnMut(usize, f64) -> Option<SweepTask>,
{
    let t = worker_count(threads, n, min_per_thread);
    if t <= 1 {
        let mut dist = vec![0.0f64; n];
        let mut assignment = vec![0u32; n];
        let mut task = first;
        loop {
            update(&task, 0, &mut dist, &mut assignment);
            let (far, far_d) = chunk_argmax(0, &dist);
            match driver(far, far_d) {
                Some(next) => task = next,
                None => return (dist, assignment),
            }
        }
    }

    let ranges = split_even(n, t);
    let mut dist = vec![0.0f64; n];
    let mut assignment = vec![0u32; n];
    thread::scope(|s| {
        // Each worker owns its chunk for the whole run and reports a
        // local argmax per round; chunks come home over `done` channels.
        struct Lane {
            task_tx: mpsc::Sender<SweepTask>,
            partial_rx: mpsc::Receiver<(usize, f64)>,
            done_rx: mpsc::Receiver<(usize, Vec<f64>, Vec<u32>)>,
        }
        let update = &update;
        let lanes: Vec<Lane> = ranges
            .iter()
            .map(|r| {
                let (task_tx, task_rx) = mpsc::channel::<SweepTask>();
                let (partial_tx, partial_rx) = mpsc::channel();
                let (done_tx, done_rx) = mpsc::channel();
                let offset = r.start;
                let len = r.len();
                s.spawn(move || {
                    let mut d_chunk = vec![0.0f64; len];
                    let mut a_chunk = vec![0u32; len];
                    while let Ok(task) = task_rx.recv() {
                        update(&task, offset, &mut d_chunk, &mut a_chunk);
                        let sent = partial_tx.send(chunk_argmax(offset, &d_chunk));
                        if sent.is_err() {
                            break; // driver gone — unwinding
                        }
                    }
                    let _ = done_tx.send((offset, d_chunk, a_chunk));
                });
                Lane {
                    task_tx,
                    partial_rx,
                    done_rx,
                }
            })
            .collect();

        let mut task = first;
        loop {
            for lane in &lanes {
                lane.task_tx.send(task).expect("sweep worker hung up");
            }
            let mut best = (0usize, f64::NEG_INFINITY);
            for lane in &lanes {
                let (i, v) = lane.partial_rx.recv().expect("sweep worker hung up");
                // strict > keeps the earliest chunk's index on ties
                if v > best.1 {
                    best = (i, v);
                }
            }
            match driver(best.0, best.1) {
                Some(next) => task = next,
                None => break,
            }
        }
        for lane in lanes {
            drop(lane.task_tx); // workers drain and return their chunks
            let (offset, d_chunk, a_chunk) = lane.done_rx.recv().expect("sweep worker hung up");
            dist[offset..offset + d_chunk.len()].copy_from_slice(&d_chunk);
            assignment[offset..offset + a_chunk.len()].copy_from_slice(&a_chunk);
        }
    });
    (dist, assignment)
}

fn chunk_argmax(offset: usize, chunk: &[f64]) -> (usize, f64) {
    let mut best = offset;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in chunk.iter().enumerate() {
        if v > best_v {
            best = offset + i;
            best_v = v;
        }
    }
    (best, best_v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted farthest-point run: points on a line, distance to the
    /// running center set, exactly the Gonzalez recurrence.
    fn run(n: usize, threads: usize, k: usize) -> (Vec<usize>, Vec<f64>, Vec<u32>) {
        let coords: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin() * 100.0).collect();
        let mut centers = vec![0usize];
        let (dist, assignment) = sweep_rounds(
            n,
            threads,
            1,
            SweepTask {
                center: 0,
                center_pos: 0,
                init: true,
            },
            |task, offset, d, a| {
                let c = coords[task.center];
                for (i, (dv, av)) in d.iter_mut().zip(a.iter_mut()).enumerate() {
                    let nd = (coords[offset + i] - c).abs();
                    if task.init || nd < *dv {
                        *dv = nd;
                        *av = task.center_pos;
                    }
                }
            },
            |far, _| {
                if centers.len() >= k {
                    None
                } else {
                    centers.push(far);
                    Some(SweepTask {
                        center: far,
                        center_pos: (centers.len() - 1) as u32,
                        init: false,
                    })
                }
            },
        );
        (centers, dist, assignment)
    }

    #[test]
    fn persistent_workers_match_sequential() {
        let seq = run(5000, 1, 12);
        for threads in [2usize, 3, 8] {
            let par = run(5000, threads, 12);
            assert_eq!(seq.0, par.0, "centers, threads={threads}");
            assert_eq!(seq.1, par.1, "dist, threads={threads}");
            assert_eq!(seq.2, par.2, "assignment, threads={threads}");
        }
    }

    #[test]
    fn zero_rounds_is_fine() {
        // driver stops immediately after the first sweep
        let (dist, assignment) = sweep_rounds(
            100,
            4,
            1,
            SweepTask {
                center: 0,
                center_pos: 0,
                init: true,
            },
            |_, _, d, _| d.fill(1.0),
            |_, _| None,
        );
        assert!(dist.iter().all(|&d| d == 1.0));
        assert_eq!(assignment, vec![0u32; 100]);
    }
}
