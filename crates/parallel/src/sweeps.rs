//! Persistent-worker engine for iterative farthest-point sweeps.
//!
//! The Gonzalez greedies (vanilla and Algorithm 1) run thousands of
//! rounds of "update every point's distance against one new center,
//! then take an argmax". Spawning scoped threads per round would burn
//! more time in thread startup than in distance evaluations once the
//! per-round work shrinks — so this engine spawns each worker **once**,
//! hands it ownership of a contiguous chunk of the `(dist, assignment)`
//! arrays, and drives rounds over a park/unpark **generation barrier**:
//! the driver publishes the round's task and bumps a generation
//! counter, workers wake, sweep their chunk, post a local argmax into
//! their own slot, and the last one to finish wakes the driver. No
//! channel machinery sits on the round hot path (earlier revisions paid
//! one mpsc round-trip per worker per Gonzalez iteration); `unpark`
//! tokens make the wake-ups race-free even when a worker checks the
//! generation just before the driver bumps it.
//!
//! Determinism: chunk boundaries depend only on `(n, threads)`, the
//! per-element update is element-local, and the argmax reduction scans
//! worker slots in chunk order with strict `>` — the smallest index
//! among maxima wins for every thread count, exactly like a sequential
//! left-to-right scan.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

use crate::executors::{split_even, worker_count};

/// One round's work order: sweep against `center` (stored at position
/// `center_pos` in the caller's center list). `init` seeds the arrays
/// instead of taking minima.
#[derive(Debug, Clone, Copy)]
pub struct SweepTask {
    /// Point index of the center to sweep against.
    pub center: usize,
    /// Its position in the caller's center list.
    pub center_pos: u32,
    /// First round: overwrite instead of min-merge.
    pub init: bool,
}

/// One worker's per-round argmax result, written before it signals the
/// round barrier. The `f64` travels as bits through an atomic; the slot
/// is only read by the driver after the `done` counter (with
/// acquire/release ordering) proves the write happened.
#[derive(Default)]
struct PartialSlot {
    index: AtomicUsize,
    dist_bits: AtomicU64,
}

/// Round-synchronization state shared between the driver and the
/// persistent workers.
struct Barrier {
    /// Monotone round counter; workers run one sweep per increment.
    generation: AtomicU64,
    /// Set (before the final generation bump) to shut workers down.
    stop: AtomicBool,
    /// The task of the current generation. Uncontended in practice: the
    /// driver writes while every worker is parked or reducing.
    task: Mutex<SweepTask>,
    /// Workers finished with the current generation.
    done: AtomicUsize,
    /// Per-worker argmax slots, indexed by chunk order.
    partials: Vec<PartialSlot>,
}

/// Runs rounds of chunk-parallel sweeps until `driver` stops.
///
/// Per round, `update(&task, offset, dist_chunk, assign_chunk)` runs on
/// every chunk (in parallel), then the global argmax of `dist` —
/// smallest index on ties — is handed to `driver`, which returns the
/// next task or `None` to stop. Returns the final `(dist, assignment)`.
///
/// `update` must be element-local (chunk `i` only reads/writes its own
/// elements) — that's what makes the chunking invisible in the result.
pub fn sweep_rounds<U, D>(
    n: usize,
    threads: usize,
    min_per_thread: usize,
    first: SweepTask,
    update: U,
    mut driver: D,
) -> (Vec<f64>, Vec<u32>)
where
    U: Fn(&SweepTask, usize, &mut [f64], &mut [u32]) + Sync,
    D: FnMut(usize, f64) -> Option<SweepTask>,
{
    let t = worker_count(threads, n, min_per_thread);
    if t <= 1 {
        let mut dist = vec![0.0f64; n];
        let mut assignment = vec![0u32; n];
        let mut task = first;
        loop {
            update(&task, 0, &mut dist, &mut assignment);
            let (far, far_d) = chunk_argmax(0, &dist);
            match driver(far, far_d) {
                Some(next) => task = next,
                None => return (dist, assignment),
            }
        }
    }

    let ranges = split_even(n, t);
    let t = ranges.len(); // == t for n ≥ t, but never trust an off-by-one
    let mut dist = vec![0.0f64; n];
    let mut assignment = vec![0u32; n];
    let barrier = Barrier {
        generation: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        task: Mutex::new(first),
        done: AtomicUsize::new(0),
        partials: (0..t).map(|_| PartialSlot::default()).collect(),
    };
    thread::scope(|s| {
        let barrier = &barrier;
        let update = &update;
        let driver_thread = thread::current();
        // Each worker owns its chunk for the whole run; the chunks come
        // home over a one-shot channel at shutdown.
        let mut handles = Vec::with_capacity(t);
        let mut done_rxs = Vec::with_capacity(t);
        for (w, r) in ranges.iter().enumerate() {
            let (done_tx, done_rx) = mpsc::channel();
            let offset = r.start;
            let len = r.len();
            let driver_thread = driver_thread.clone();
            handles.push(s.spawn(move || {
                let mut d_chunk = vec![0.0f64; len];
                let mut a_chunk = vec![0u32; len];
                let mut seen = 0u64;
                loop {
                    // Wait for the next generation. `park` may wake
                    // spuriously; the predicate loop re-checks. The
                    // unpark token guarantees no missed wake-up even if
                    // the driver bumps between the load and the park.
                    loop {
                        let g = barrier.generation.load(Ordering::Acquire);
                        if g > seen {
                            seen = g;
                            break;
                        }
                        thread::park();
                    }
                    if barrier.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let task = *barrier.task.lock().expect("sweep task lock poisoned");
                    update(&task, offset, &mut d_chunk, &mut a_chunk);
                    let (i, v) = chunk_argmax(offset, &d_chunk);
                    let slot = &barrier.partials[w];
                    slot.index.store(i, Ordering::Relaxed);
                    slot.dist_bits.store(v.to_bits(), Ordering::Relaxed);
                    // The release on `done` publishes the slot writes;
                    // the last worker of the round wakes the driver.
                    if barrier.done.fetch_add(1, Ordering::AcqRel) + 1 == t {
                        driver_thread.unpark();
                    }
                }
                let _ = done_tx.send((offset, d_chunk, a_chunk));
            }));
            done_rxs.push(done_rx);
        }

        loop {
            // Publish the round: reset the arrival counter *before*
            // bumping the generation (workers of this round have all
            // been observed done, so no one is still incrementing).
            barrier.done.store(0, Ordering::Release);
            barrier.generation.fetch_add(1, Ordering::Release);
            for h in &handles {
                h.thread().unpark();
            }
            while barrier.done.load(Ordering::Acquire) < t {
                thread::park();
            }
            // Ordered reduction over the worker slots; strict > keeps
            // the earliest chunk's index on ties.
            let mut best = (0usize, f64::NEG_INFINITY);
            for slot in &barrier.partials {
                let v = f64::from_bits(slot.dist_bits.load(Ordering::Relaxed));
                if v > best.1 {
                    best = (slot.index.load(Ordering::Relaxed), v);
                }
            }
            match driver(best.0, best.1) {
                Some(next) => {
                    *barrier.task.lock().expect("sweep task lock poisoned") = next;
                }
                None => break,
            }
        }
        // Shutdown: one more generation with the stop flag raised.
        barrier.stop.store(true, Ordering::Release);
        barrier.generation.fetch_add(1, Ordering::Release);
        for h in &handles {
            h.thread().unpark();
        }
        for rx in done_rxs {
            let (offset, d_chunk, a_chunk) = rx.recv().expect("sweep worker hung up");
            dist[offset..offset + d_chunk.len()].copy_from_slice(&d_chunk);
            assignment[offset..offset + a_chunk.len()].copy_from_slice(&a_chunk);
        }
    });
    (dist, assignment)
}

fn chunk_argmax(offset: usize, chunk: &[f64]) -> (usize, f64) {
    let mut best = offset;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in chunk.iter().enumerate() {
        if v > best_v {
            best = offset + i;
            best_v = v;
        }
    }
    (best, best_v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted farthest-point run: points on a line, distance to the
    /// running center set, exactly the Gonzalez recurrence.
    fn run(n: usize, threads: usize, k: usize) -> (Vec<usize>, Vec<f64>, Vec<u32>) {
        let coords: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin() * 100.0).collect();
        let mut centers = vec![0usize];
        let (dist, assignment) = sweep_rounds(
            n,
            threads,
            1,
            SweepTask {
                center: 0,
                center_pos: 0,
                init: true,
            },
            |task, offset, d, a| {
                let c = coords[task.center];
                for (i, (dv, av)) in d.iter_mut().zip(a.iter_mut()).enumerate() {
                    let nd = (coords[offset + i] - c).abs();
                    if task.init || nd < *dv {
                        *dv = nd;
                        *av = task.center_pos;
                    }
                }
            },
            |far, _| {
                if centers.len() >= k {
                    None
                } else {
                    centers.push(far);
                    Some(SweepTask {
                        center: far,
                        center_pos: (centers.len() - 1) as u32,
                        init: false,
                    })
                }
            },
        );
        (centers, dist, assignment)
    }

    #[test]
    fn persistent_workers_match_sequential() {
        let seq = run(5000, 1, 12);
        for threads in [2usize, 3, 8] {
            let par = run(5000, threads, 12);
            assert_eq!(seq.0, par.0, "centers, threads={threads}");
            assert_eq!(seq.1, par.1, "dist, threads={threads}");
            assert_eq!(seq.2, par.2, "assignment, threads={threads}");
        }
    }

    #[test]
    fn many_rounds_with_many_threads() {
        // Stress the barrier: hundreds of generations, more workers than
        // cores, tiny chunks — any lost wake-up deadlocks (caught by the
        // test timeout) and any ordering bug diverges from 1 thread.
        let seq = run(600, 1, 200);
        let par = run(600, 16, 200);
        assert_eq!(seq.0, par.0);
        assert_eq!(seq.1, par.1);
        assert_eq!(seq.2, par.2);
    }

    #[test]
    fn zero_rounds_is_fine() {
        // driver stops immediately after the first sweep
        let (dist, assignment) = sweep_rounds(
            100,
            4,
            1,
            SweepTask {
                center: 0,
                center_pos: 0,
                init: true,
            },
            |_, _, d, _| d.fill(1.0),
            |_, _| None,
        );
        assert!(dist.iter().all(|&d| d == 1.0));
        assert_eq!(assignment, vec![0u32; 100]);
    }
}
