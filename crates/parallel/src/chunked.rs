//! Append-only chunked CSR: rows that grow over time without ever
//! rewriting history.
//!
//! The dynamic-ingest path of the engine maintains per-center cover sets
//! that only ever *gain* members (points are append-only, assignments
//! never change). A flat [`Csr`] cannot absorb new members into interior
//! rows without rebuilding the whole value array, so the writer keeps a
//! [`ChunkedCsr`]: an ordered list of sealed [`Csr`] chunks, one per
//! ingest batch, where the logical row `i` is the concatenation of row
//! `i` across chunks. Sealed chunks are never reallocated or touched
//! again; an epoch publish [`ChunkedCsr::flatten`]s into the read-
//! optimized flat [`Csr`] snapshot readers iterate (a pure memcpy pass —
//! zero distance evaluations in the paper's `t_dis` cost model).
//!
//! Because chunks are appended in time order and every batch carries
//! strictly larger element ids than the one before, concatenated rows
//! stay ascending — the invariant all the Step 1–3 inner loops rely on.

use crate::csr::Csr;

/// A row-growable CSR built from sealed per-batch chunks. Rows may also
/// be added over time ([`ChunkedCsr::grow_rows`]); a chunk older than a
/// row simply contributes nothing to it.
#[derive(Debug, Clone, Default)]
pub struct ChunkedCsr {
    num_rows: usize,
    chunks: Vec<Csr>,
}

impl ChunkedCsr {
    /// An empty container with zero rows and no chunks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the container with one chunk (e.g. the cover sets of an
    /// already-built net).
    pub fn from_csr(csr: Csr) -> Self {
        Self {
            num_rows: csr.num_rows(),
            chunks: vec![csr],
        }
    }

    /// Number of logical rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Raises the row count (rows never shrink; older chunks treat the
    /// new rows as empty).
    pub fn grow_rows(&mut self, num_rows: usize) {
        assert!(num_rows >= self.num_rows, "rows are append-only");
        self.num_rows = num_rows;
    }

    /// Appends one sealed chunk. The chunk may have fewer rows than the
    /// container (its missing tail rows are empty) but never more.
    pub fn append_chunk(&mut self, chunk: Csr) {
        assert!(
            chunk.num_rows() <= self.num_rows,
            "chunk has {} rows, container only {}",
            chunk.num_rows(),
            self.num_rows
        );
        if chunk.total_len() > 0 {
            self.chunks.push(chunk);
        }
    }

    /// Number of sealed chunks currently held.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The sealed chunks, in append order (read-only; the persistence
    /// codec serializes them verbatim).
    pub fn chunks(&self) -> &[Csr] {
        &self.chunks
    }

    /// Total stored values across all chunks.
    pub fn total_len(&self) -> usize {
        self.chunks.iter().map(Csr::total_len).sum()
    }

    /// Length of logical row `i` (summed across chunks, no values
    /// touched).
    pub fn row_len(&self, i: usize) -> usize {
        assert!(i < self.num_rows);
        self.chunks
            .iter()
            .filter(|c| i < c.num_rows())
            .map(|c| c.row_len(i))
            .sum()
    }

    /// Iterates logical row `i`: chunk rows chained in chunk order.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = u32> + '_ {
        assert!(i < self.num_rows);
        self.chunks
            .iter()
            .filter(move |c| i < c.num_rows())
            .flat_map(move |c| c.row(i).iter().copied())
    }

    /// Materializes the read-optimized flat [`Csr`]: one contiguous
    /// value array, rows concatenated in chunk order. Sealed chunks are
    /// read, never modified.
    pub fn flatten(&self) -> Csr {
        let mut offsets = vec![0usize; self.num_rows + 1];
        for r in 0..self.num_rows {
            offsets[r + 1] = offsets[r] + self.row_len(r);
        }
        let mut values = Vec::with_capacity(self.total_len());
        for r in 0..self.num_rows {
            for c in &self.chunks {
                if r < c.num_rows() {
                    values.extend_from_slice(c.row(r));
                }
            }
        }
        Csr::from_parts(offsets, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_concatenate_per_row() {
        let mut c = ChunkedCsr::from_csr(Csr::from_rows(vec![vec![0u32, 1], vec![2]]));
        assert_eq!(c.num_rows(), 2);
        c.grow_rows(3);
        // batch chunk: row 0 gains 3, the new row 2 gains 4 and 5.
        c.append_chunk(Csr::from_rows(vec![vec![3u32], vec![], vec![4, 5]]));
        assert_eq!(c.row_len(0), 3);
        assert_eq!(c.row_len(1), 1);
        assert_eq!(c.row_len(2), 2);
        assert_eq!(c.total_len(), 6);
        assert_eq!(c.row_iter(0).collect::<Vec<_>>(), vec![0, 1, 3]);
        let flat = c.flatten();
        assert_eq!(&flat[0], &[0u32, 1, 3][..]);
        assert_eq!(&flat[1], &[2u32][..]);
        assert_eq!(&flat[2], &[4u32, 5][..]);
    }

    #[test]
    fn empty_chunks_are_dropped() {
        let mut c = ChunkedCsr::new();
        c.grow_rows(2);
        c.append_chunk(Csr::from_assignment(&[], 2));
        assert_eq!(c.num_chunks(), 0);
        assert_eq!(c.flatten(), Csr::from_assignment(&[], 2));
    }

    #[test]
    fn flatten_matches_from_assignment_replay() {
        // Ingesting an assignment in batches must flatten to the same
        // Csr a one-shot counting sort over the whole assignment gives.
        let assignment: Vec<u32> = vec![0, 1, 0, 2, 1, 2, 2, 0, 3, 3];
        let whole = Csr::from_assignment(&assignment, 4);
        let mut chunked = ChunkedCsr::new();
        for (start, end, rows) in [(0usize, 3usize, 2usize), (3, 6, 3), (6, 10, 4)] {
            chunked.grow_rows(rows);
            let mut chunk_rows: Vec<Vec<u32>> = vec![Vec::new(); rows];
            for i in start..end {
                chunk_rows[assignment[i] as usize].push(i as u32);
            }
            chunked.append_chunk(Csr::from_rows(&chunk_rows));
        }
        assert_eq!(chunked.flatten(), whole);
    }

    #[test]
    #[should_panic]
    fn oversized_chunk_rejected() {
        let mut c = ChunkedCsr::new();
        c.grow_rows(1);
        c.append_chunk(Csr::from_rows(vec![vec![0u32], vec![1]]));
    }
}
