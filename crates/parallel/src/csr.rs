//! Compressed sparse rows: `Vec<Vec<u32>>` flattened to two arrays.

use std::ops::{Index, Range};

/// A list of `u32` rows stored as one flat value array plus offsets —
/// row `i` is `values[offsets[i]..offsets[i+1]]`.
///
/// Used for the three hot containers of the pipeline: cover sets `C_e`
/// (rows = centers, values = point ids), the center adjacency `A_e`
/// (rows = centers, values = neighboring center positions), and core
/// fragments `C̃_e`. Compared to nested `Vec`s this removes one pointer
/// indirection + separate allocation per row, which is exactly what the
/// innermost distance loops iterate over.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>, // len = rows + 1; offsets[0] == 0
    values: Vec<u32>,
}

impl Csr {
    /// An empty container with zero rows.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// Builds from explicit parts. `offsets` must start at 0, be
    /// non-decreasing, and end at `values.len()`.
    pub fn from_parts(offsets: Vec<usize>, values: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().expect("non-empty"),
            values.len(),
            "offsets must end at values.len()"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets, values }
    }

    /// Builds from nested rows (test/interop convenience).
    pub fn from_rows<I>(rows: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<[u32]>,
    {
        let mut offsets = vec![0usize];
        let mut values = Vec::new();
        for row in rows {
            values.extend_from_slice(row.as_ref());
            offsets.push(values.len());
        }
        Self { offsets, values }
    }

    /// Inverts an assignment (`assignment[i] = row of element i`) into
    /// rows via counting sort: row `r` lists, in ascending order, every
    /// `i` with `assignment[i] == r`. This is exactly the cover-set
    /// construction of Algorithm 1.
    pub fn from_assignment(assignment: &[u32], num_rows: usize) -> Self {
        let mut offsets = vec![0usize; num_rows + 1];
        for &a in assignment {
            offsets[a as usize + 1] += 1;
        }
        for r in 0..num_rows {
            offsets[r + 1] += offsets[r];
        }
        let mut cursor = offsets.clone();
        let mut values = vec![0u32; assignment.len()];
        for (i, &a) in assignment.iter().enumerate() {
            values[cursor[a as usize]] = i as u32;
            cursor[a as usize] += 1;
        }
        Self { offsets, values }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Total number of stored values across all rows.
    pub fn total_len(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Length of row `i` without touching the value array.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The value range of row `i` (an index range into
    /// [`Csr::values`]).
    #[inline]
    pub fn row_range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Iterates rows in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[u32]> + '_ {
        (0..self.num_rows()).map(|i| self.row(i))
    }

    /// The flat value array.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// The offset array (length `num_rows() + 1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }
}

impl Index<usize> for Csr {
    type Output = [u32];
    #[inline]
    fn index(&self, i: usize) -> &[u32] {
        self.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let rows: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![7]];
        let csr = Csr::from_rows(&rows);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.total_len(), 3);
        assert_eq!(&csr[0], &[1, 2][..]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row_len(2), 1);
        assert_eq!(csr.row_range(2), 2..3);
        let collected: Vec<&[u32]> = csr.iter().collect();
        assert_eq!(collected, vec![&[1u32, 2][..], &[][..], &[7][..]]);
    }

    #[test]
    fn from_assignment_matches_push_loop() {
        let assignment = [2u32, 0, 2, 1, 0, 2];
        let csr = Csr::from_assignment(&assignment, 3);
        // reference: the nested push loop the seed used
        let mut reference: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for (i, &a) in assignment.iter().enumerate() {
            reference[a as usize].push(i as u32);
        }
        assert_eq!(csr, Csr::from_rows(&reference));
    }

    #[test]
    fn empty_rows_everywhere() {
        let csr = Csr::from_assignment(&[], 4);
        assert_eq!(csr.num_rows(), 4);
        assert!(csr.iter().all(<[u32]>::is_empty));
        assert!(!csr.is_empty());
        assert!(Csr::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn bad_offsets_rejected() {
        let _ = Csr::from_parts(vec![0, 5], vec![1, 2]);
    }
}
