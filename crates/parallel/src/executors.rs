//! Scoped-thread executors, deterministic by construction.
//!
//! All splitting is into contiguous chunks in index order and all
//! per-chunk results are combined in chunk order, so every function here
//! returns bit-identical output for any thread count.
//!
//! # Panic propagation
//!
//! A worker closure that panics (a user metric, typically) does not
//! abort the process or surface as a secondary "worker panicked"
//! panic: every sibling worker is joined first, then the *original*
//! payload is re-raised on the calling thread via
//! [`std::panic::resume_unwind`]. Callers that isolate faults (e.g. a
//! serving tier wrapping queries in `catch_unwind`) therefore see the
//! real payload, once, with no worker thread still running.

use std::any::Any;
use std::ops::Range;
use std::thread;

/// Joins every handle in order, collecting results; if any worker
/// panicked, the first payload (in chunk order) is kept and re-raised
/// only after ALL handles are joined.
fn join_all<R>(handles: Vec<thread::ScopedJoinHandle<'_, R>>, out: &mut Vec<R>) {
    let mut payload: Option<Box<dyn Any + Send>> = None;
    for h in handles {
        match h.join() {
            Ok(r) => out.push(r),
            Err(p) => {
                let _ = payload.get_or_insert(p);
            }
        }
    }
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges of nearly equal
/// length (the first `n % parts` ranges get one extra element). Empty
/// ranges are never produced.
pub fn split_even(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// How many workers are worth spawning for `n` items when each thread
/// should own at least `min_per_thread` of them. Callers that manage
/// their own per-worker state (e.g. pruning-counter reduction) combine
/// this with [`split_even`] + [`par_map_ranges`] to get the same
/// sequential-degradation behavior as [`par_map_range`].
pub fn worker_count(threads: usize, n: usize, min_per_thread: usize) -> usize {
    threads.max(1).min(n / min_per_thread.max(1)).max(1)
}

/// Splits `0..n` into at most `parts` contiguous ranges of roughly
/// equal **total weight** (`weight(i)` per index). Used where per-index
/// cost is skewed — e.g. upper-triangle adjacency rows (row `i` costs
/// `n - i - 1`) or per-fragment cover-tree builds.
pub fn split_weighted(
    n: usize,
    parts: usize,
    weight: impl Fn(usize) -> usize,
) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    if parts <= 1 {
        let mut all = Vec::new();
        if n > 0 {
            all.push(0..n);
        }
        return all;
    }
    let total: usize = (0..n).map(&weight).sum();
    let target = total / parts + 1;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    let mut acc = 0usize;
    for i in 0..n {
        acc += weight(i);
        if acc >= target && out.len() + 1 < parts {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

/// Runs one task per given range on its own scoped thread, returning
/// results in range order. Ranges typically come from [`split_even`] or
/// [`split_weighted`].
pub fn par_map_ranges<R, F>(ranges: Vec<Range<usize>>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    let mut out: Vec<R> = Vec::with_capacity(ranges.len());
    thread::scope(|s| {
        let handles: Vec<_> = ranges.into_iter().map(|r| s.spawn(|| f(r))).collect();
        join_all(handles, &mut out);
    });
    out
}

/// Order-preserving parallel map over `0..n`: the result at position
/// `i` is `f(i)`, exactly as the sequential `(0..n).map(f).collect()`.
pub fn par_map_range<R, F>(n: usize, threads: usize, min_per_thread: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let t = worker_count(threads, n, min_per_thread);
    if t <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = split_even(n, t);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| s.spawn(|| r.map(&f).collect::<Vec<R>>()))
            .collect();
        join_all(handles, &mut chunks);
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_covers_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_even(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn map_range_matches_sequential_for_any_thread_count() {
        let n = 10_000;
        let seq: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(31)).collect();
        for threads in [1usize, 2, 3, 8] {
            let par = par_map_range(n, threads, 1, |i| (i as u64).wrapping_mul(31));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn weighted_split_covers_and_balances() {
        // triangle weights: row i costs n - 1 - i
        let n = 1000;
        let ranges = split_weighted(n, 4, |i| n - 1 - i);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, n);
        let weights: Vec<usize> = ranges
            .iter()
            .map(|r| r.clone().map(|i| n - 1 - i).sum())
            .collect();
        let total: usize = weights.iter().sum();
        for w in &weights {
            assert!(*w >= total / 16, "a chunk got starved: {weights:?}");
        }
        assert!(split_weighted(0, 4, |_| 1).is_empty());

        let out = par_map_ranges(ranges, |r| r.len());
        assert_eq!(out.iter().sum::<usize>(), n);
    }

    #[test]
    fn worker_panic_resurfaces_with_its_payload_after_all_join() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};
        let finished = AtomicUsize::new(0);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            par_map_range(8, 8, 1, |i| {
                if i == 3 {
                    panic!("metric exploded on {i}");
                }
                finished.fetch_add(1, Ordering::SeqCst);
                i
            })
        }))
        .unwrap_err();
        // The original payload, not a secondary join().expect message.
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("metric exploded on 3"), "got: {msg}");
        // Every sibling worker ran to completion before the re-raise.
        assert_eq!(finished.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn small_inputs_stay_sequential() {
        // must not panic / spawn for tiny inputs
        let out = par_map_range(3, 64, 4096, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
