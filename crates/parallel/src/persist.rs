//! Byte codecs for the flat and chunked CSR containers — the storage
//! layer every persisted net, adjacency, and fragment partition rides
//! on. Layouts follow the `mdbscan_persist` conventions (little-endian,
//! length-prefixed slices); validation re-establishes the structural
//! invariants `Csr::from_parts` asserts, but as typed format errors
//! instead of panics.

use crate::chunked::ChunkedCsr;
use crate::csr::Csr;
use mdbscan_persist::{ByteReader, ByteWriter, PersistError};

impl Csr {
    /// Appends offsets + values.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_usizes(self.offsets());
        out.put_u32s(self.values());
    }

    /// Reads a container written by [`Csr::encode`], validating the
    /// offset invariants (starts at 0, non-decreasing, ends at the
    /// value count).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let offsets = r.get_usizes()?;
        let values = r.get_u32s()?;
        if offsets.first() != Some(&0) {
            return Err(r.err("csr offsets must start with 0"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(r.err("csr offsets must be non-decreasing"));
        }
        if *offsets.last().expect("checked non-empty") != values.len() {
            return Err(r.err(format!(
                "csr offsets end at {} but {} values are stored",
                offsets.last().expect("checked non-empty"),
                values.len()
            )));
        }
        Ok(Csr::from_parts(offsets, values))
    }
}

impl ChunkedCsr {
    /// Appends the logical row count plus every sealed chunk.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_usize(self.num_rows());
        out.put_usize(self.chunks().len());
        for chunk in self.chunks() {
            chunk.encode(out);
        }
    }

    /// Reads a container written by [`ChunkedCsr::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let num_rows = r.get_usize()?;
        let num_chunks = r.get_usize()?;
        let mut out = ChunkedCsr::new();
        out.grow_rows(num_rows);
        for _ in 0..num_chunks {
            let chunk = Csr::decode(r)?;
            if chunk.num_rows() > num_rows {
                return Err(r.err(format!(
                    "chunk has {} rows, container only {num_rows}",
                    chunk.num_rows()
                )));
            }
            out.append_chunk(chunk);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_csr(csr: &Csr) -> Csr {
        let mut w = ByteWriter::new();
        csr.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("csr", &bytes);
        let back = Csr::decode(&mut r).unwrap();
        assert!(r.finished());
        back
    }

    #[test]
    fn csr_round_trips() {
        let csr = Csr::from_rows(vec![vec![1u32, 2], vec![], vec![9, 10, 11]]);
        assert_eq!(round_trip_csr(&csr), csr);
        assert_eq!(round_trip_csr(&Csr::new()), Csr::new());
    }

    #[test]
    fn corrupt_offsets_are_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_usizes(&[0, 5]); // claims 5 values
        w.put_u32s(&[1, 2]); // stores 2
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("csr", &bytes);
        assert!(matches!(
            Csr::decode(&mut r),
            Err(PersistError::Format { .. })
        ));
    }

    #[test]
    fn chunked_round_trips_with_flatten_equality() {
        let mut c = ChunkedCsr::from_csr(Csr::from_rows(vec![vec![0u32, 1], vec![2]]));
        c.grow_rows(3);
        c.append_chunk(Csr::from_rows(vec![vec![3u32], vec![], vec![4, 5]]));
        let mut w = ByteWriter::new();
        c.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("chunked", &bytes);
        let back = ChunkedCsr::decode(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back.num_rows(), c.num_rows());
        assert_eq!(back.num_chunks(), c.num_chunks());
        assert_eq!(back.flatten(), c.flatten());
    }
}
