//! Property tests: Algorithm 1 always yields a packing-and-covering r̄-net
//! whose cover sets partition the input, on arbitrary inputs.

use mdbscan_kcenter::{CenterAdjacency, RadiusGuidedNet};
use mdbscan_metric::{Euclidean, Metric};
use proptest::prelude::*;

fn inputs() -> impl Strategy<Value = (Vec<Vec<f64>>, f64)> {
    (
        prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 2), 1..150),
        0.1f64..50.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn net_is_packing_and_covering((pts, rbar) in inputs()) {
        let net = RadiusGuidedNet::build(&pts, &Euclidean, rbar);
        prop_assert!(net.covered);
        prop_assert_eq!(net.len(), pts.len());
        // covering within rbar
        for (i, p) in pts.iter().enumerate() {
            let c = net.centers[net.assignment[i] as usize];
            prop_assert!(Euclidean.distance(&pts[c], p) <= rbar + 1e-9);
        }
        // packing > rbar
        for (a, &ci) in net.centers.iter().enumerate() {
            for &cj in net.centers.iter().skip(a + 1) {
                prop_assert!(Euclidean.distance(&pts[ci], &pts[cj]) > rbar - 1e-9);
            }
        }
        // partition
        let total: usize = net.cover_sets.total_len();
        prop_assert_eq!(total, pts.len());
    }

    /// Lemma 2: for every point p, the true ε-ball is contained in the
    /// union of neighbor cover sets at threshold 2r̄ + ε.
    #[test]
    fn neighbor_balls_capture_epsilon_neighborhoods(
        (pts, rbar) in inputs(),
        eps_factor in 0.5f64..4.0,
    ) {
        let eps = rbar * eps_factor;
        let net = RadiusGuidedNet::build(&pts, &Euclidean, rbar);
        let adj = CenterAdjacency::build(&pts, &Euclidean, &net.centers, 2.0 * rbar + eps);
        for (i, p) in pts.iter().enumerate() {
            let cp = net.assignment[i] as usize;
            // membership test: every q within eps of p lies in some C_e
            // with e in neighbors[cp]
            for (j, q) in pts.iter().enumerate() {
                if Euclidean.distance(p, q) <= eps {
                    let cq = net.assignment[j];
                    prop_assert!(
                        adj.neighbors[cp].contains(&cq),
                        "point {j} within eps of {i} but its center {cq} not in A"
                    );
                }
            }
        }
    }
}
