//! k-center clustering toolkit for the metric DBSCAN pipeline.
//!
//! Three algorithms live here:
//!
//! * [`gonzalez`] — the classical 2-approximate greedy for `k`-center
//!   (Gonzalez 1985): repeatedly add the point farthest from the current
//!   center set.
//! * [`RadiusGuidedNet`] — **Algorithm 1 of the paper**: the same greedy,
//!   but driven by a *radius bound* `r̄` instead of `k`. It terminates as
//!   soon as every point lies within `r̄` of a center, producing an `r̄`-net
//!   `E` of the data together with the *cover sets* `C_e` (the Voronoi
//!   cells of the net) and per-point closest-center assignments `c_p`. On
//!   inliers of doubling dimension `D` plus `z` arbitrary outliers, the
//!   greedy stops after `O((Δ/r̄)^D) + z` iterations (Lemma 1); each
//!   iteration is a linear scan, parallelizable across points.
//! * [`IncrementalNet`] — the **online** counterpart of Algorithm 1:
//!   first-fit netting (the streaming pass-1 rule), maintaining a valid
//!   `r̄`-net under point-at-a-time insertion with batch-split-invariant
//!   results — the substrate of the engine's dynamic ingest path.
//! * [`kcenter_with_outliers`] — the randomized greedy of Ding–Yu–Wang
//!   (ESA 2019) that the DYW_DBSCAN baseline (Ding et al., IJCAI 2021)
//!   builds on: each round samples the next center uniformly from the
//!   `(1+η)·z̃` farthest points, which tolerates up to `z̃` adversarial
//!   outliers with constant success probability per round. The paper
//!   (§3.3) contrasts its own deterministic, parameter-light Algorithm 1
//!   against exactly this routine.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod adjacency;
mod gonzalez;
mod online;
mod outliers;
mod persist;
mod radius_guided;

pub use adjacency::CenterAdjacency;
pub use gonzalez::{gonzalez, gonzalez_with, KCenterResult};
pub use online::{IncrementalNet, IngestDelta, PointAccess};
pub use outliers::{kcenter_with_outliers, OutlierKCenter};
pub use radius_guided::{BuildOptions, RadiusGuidedNet};
