//! Center-to-center neighbor adjacency (the `A` sets of the paper).

use mdbscan_metric::Metric;

/// Symmetric adjacency over a center set: `neighbors[e]` lists every center
/// index `e'` (position, not point id) with `dis(e, e') ≤ threshold`,
/// *including* `e` itself.
///
/// For a point `p` with closest center `c_p`, the paper's neighbor ball
/// center set `A_p = {e ∈ E : dis(e, c_p) ≤ threshold}` is exactly
/// `neighbors[c_p]` — Lemma 2 then guarantees
/// `B(p, ε) ∩ X ⊆ ∪_{e ∈ A_p} C_e` when `threshold ≥ 2r̄ + ε`.
#[derive(Debug, Clone)]
pub struct CenterAdjacency {
    /// Per center (by position), the neighboring center positions.
    pub neighbors: Vec<Vec<u32>>,
    /// The distance threshold the adjacency was computed at.
    pub threshold: f64,
}

impl CenterAdjacency {
    /// Builds the adjacency by pairwise early-abandoned distance tests.
    ///
    /// `centers` holds point indices into `points`. `O(|E|²/2)` calls to
    /// [`Metric::distance_leq`].
    pub fn build<P, M: Metric<P>>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "adjacency threshold must be non-negative, got {threshold}"
        );
        let k = centers.len();
        let mut neighbors: Vec<Vec<u32>> = (0..k).map(|e| vec![e as u32]).collect();
        for i in 0..k {
            for j in (i + 1)..k {
                if metric
                    .distance_leq(&points[centers[i]], &points[centers[j]], threshold)
                    .is_some()
                {
                    neighbors[i].push(j as u32);
                    neighbors[j].push(i as u32);
                }
            }
        }
        Self {
            neighbors,
            threshold,
        }
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True when there are no centers.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Mean neighbor-list size — the empirical `|A_p|`, reported by the
    /// experiment harness against the paper's `O((ε/r̄)^D) + z` bound
    /// (Lemma 3).
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.neighbors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    #[test]
    fn adjacency_is_symmetric_and_reflexive() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 2.0]).collect();
        let centers: Vec<usize> = (0..10).collect();
        let adj = CenterAdjacency::build(&pts, &Euclidean, &centers, 4.0);
        assert_eq!(adj.len(), 10);
        for (e, ns) in adj.neighbors.iter().enumerate() {
            assert!(ns.contains(&(e as u32)), "self-neighbor missing");
            for &o in ns {
                assert!(
                    adj.neighbors[o as usize].contains(&(e as u32)),
                    "asymmetric edge {e} -> {o}"
                );
            }
        }
        // center 0 at x=0: neighbors within 4.0 are x=0,2,4 -> 3 entries
        assert_eq!(adj.neighbors[0].len(), 3);
        // middle center sees two on each side plus itself
        assert_eq!(adj.neighbors[5].len(), 5);
        assert!(adj.mean_degree() > 1.0);
    }

    #[test]
    fn zero_threshold_only_self() {
        let pts = vec![vec![0.0], vec![1.0]];
        let adj = CenterAdjacency::build(&pts, &Euclidean, &[0, 1], 0.0);
        assert_eq!(adj.neighbors[0], vec![0]);
        assert_eq!(adj.neighbors[1], vec![1]);
    }

    #[test]
    fn empty_centers() {
        let pts = vec![vec![0.0]];
        let adj = CenterAdjacency::build(&pts, &Euclidean, &[], 1.0);
        assert!(adj.is_empty());
        assert_eq!(adj.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_threshold_panics() {
        let pts = vec![vec![0.0]];
        let _ = CenterAdjacency::build(&pts, &Euclidean, &[0], -1.0);
    }
}
