//! Center-to-center neighbor adjacency (the `A` sets of the paper).

use mdbscan_metric::Metric;
use mdbscan_parallel::{par_map_ranges, split_weighted, Csr, ParallelConfig};

/// Symmetric adjacency over a center set: `neighbors[e]` lists every center
/// index `e'` (position, not point id) with `dis(e, e') ≤ threshold`,
/// *including* `e` itself, in ascending order.
///
/// For a point `p` with closest center `c_p`, the paper's neighbor ball
/// center set `A_p = {e ∈ E : dis(e, c_p) ≤ threshold}` is exactly
/// `neighbors[c_p]` — Lemma 2 then guarantees
/// `B(p, ε) ∩ X ⊆ ∪_{e ∈ A_p} C_e` when `threshold ≥ 2r̄ + ε`.
///
/// Rows are stored flat ([`Csr`]): the Step 1/3 inner loops walk
/// `neighbors[e]` for every point, so the rows sit in one contiguous
/// allocation instead of one `Vec` per center.
#[derive(Debug, Clone)]
pub struct CenterAdjacency {
    /// Per center (by position), the neighboring center positions
    /// (ascending, self included). Index with `neighbors[e]` to get the
    /// row slice.
    pub neighbors: Csr,
    /// The distance threshold the adjacency was computed at.
    pub threshold: f64,
}

impl CenterAdjacency {
    /// Builds the adjacency with default parallelism. See
    /// [`CenterAdjacency::build_with`].
    pub fn build<P: Sync, M: Metric<P> + Sync>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
    ) -> Self {
        Self::build_with(
            points,
            metric,
            centers,
            threshold,
            &ParallelConfig::default(),
        )
    }

    /// Builds the adjacency by pairwise early-abandoned distance tests,
    /// parallelized over upper-triangle rows.
    ///
    /// `centers` holds point indices into `points`. `O(|E|²/2)` calls to
    /// [`Metric::distance_leq`] total, independent of the thread count;
    /// rows are weighted by their remaining-triangle size so workers get
    /// balanced shares. The result is identical for every thread count.
    pub fn build_with<P: Sync, M: Metric<P> + Sync>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
        parallel: &ParallelConfig,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "adjacency threshold must be non-negative, got {threshold}"
        );
        let k = centers.len();
        // Upper triangle, row-parallel: row i holds every j > i within
        // the threshold. Weight = number of pairs the row tests.
        let threads = if k >= 256 { parallel.threads() } else { 1 };
        let ranges = split_weighted(k, threads, |i| k - 1 - i);
        let upper_chunks: Vec<Vec<Vec<u32>>> = par_map_ranges(ranges, |rows| {
            rows.map(|i| {
                let ci = &points[centers[i]];
                ((i + 1)..k)
                    .filter(|&j| {
                        metric
                            .distance_leq(ci, &points[centers[j]], threshold)
                            .is_some()
                    })
                    .map(|j| j as u32)
                    .collect()
            })
            .collect()
        });

        // Assemble the symmetric CSR; each row comes out ascending:
        // mirrored smaller neighbors first (sources visited in ascending
        // i), then self, then the row's own larger neighbors.
        let mut offsets = vec![0usize; k + 1];
        for (i, row) in upper_chunks.iter().flatten().enumerate() {
            offsets[i + 1] += row.len() + 1; // + self
            for &j in row {
                offsets[j as usize + 1] += 1;
            }
        }
        for e in 0..k {
            offsets[e + 1] += offsets[e];
        }
        let mut cursor: Vec<usize> = offsets[..k].to_vec();
        let mut values = vec![0u32; offsets[k]];
        for (i, row) in upper_chunks.iter().flatten().enumerate() {
            for &j in row {
                values[cursor[j as usize]] = i as u32;
                cursor[j as usize] += 1;
            }
            // Mirrored entries for row i come only from sources < i, all
            // already visited, so row i's self slot is next.
            values[cursor[i]] = i as u32;
            cursor[i] += 1;
        }
        for (i, row) in upper_chunks.iter().flatten().enumerate() {
            values[cursor[i]..cursor[i] + row.len()].copy_from_slice(row);
            cursor[i] += row.len();
        }
        debug_assert!(cursor.iter().zip(&offsets[1..]).all(|(c, o)| c == o));

        Self {
            neighbors: Csr::from_parts(offsets, values),
            threshold,
        }
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.neighbors.num_rows()
    }

    /// True when there are no centers.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Mean neighbor-list size — the empirical `|A_p|`, reported by the
    /// experiment harness against the paper's `O((ε/r̄)^D) + z` bound
    /// (Lemma 3).
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.total_len() as f64 / self.neighbors.num_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    #[test]
    fn adjacency_is_symmetric_and_reflexive() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 2.0]).collect();
        let centers: Vec<usize> = (0..10).collect();
        let adj = CenterAdjacency::build(&pts, &Euclidean, &centers, 4.0);
        assert_eq!(adj.len(), 10);
        for e in 0..adj.len() {
            let ns = &adj.neighbors[e];
            assert!(ns.contains(&(e as u32)), "self-neighbor missing");
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "row {e} not sorted");
            for &o in ns {
                assert!(
                    adj.neighbors[o as usize].contains(&(e as u32)),
                    "asymmetric edge {e} -> {o}"
                );
            }
        }
        // center 0 at x=0: neighbors within 4.0 are x=0,2,4 -> 3 entries
        assert_eq!(adj.neighbors[0].len(), 3);
        // middle center sees two on each side plus itself
        assert_eq!(adj.neighbors[5].len(), 5);
        assert!(adj.mean_degree() > 1.0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 31) as f64, (i / 31) as f64 * 1.5])
            .collect();
        let centers: Vec<usize> = (0..400).collect();
        let seq = CenterAdjacency::build_with(
            &pts,
            &Euclidean,
            &centers,
            3.0,
            &ParallelConfig::sequential(),
        );
        for threads in [2usize, 4, 8] {
            let par = CenterAdjacency::build_with(
                &pts,
                &Euclidean,
                &centers,
                3.0,
                &ParallelConfig::new(threads),
            );
            assert_eq!(seq.neighbors, par.neighbors, "threads={threads}");
        }
    }

    #[test]
    fn zero_threshold_only_self() {
        let pts = vec![vec![0.0], vec![1.0]];
        let adj = CenterAdjacency::build(&pts, &Euclidean, &[0, 1], 0.0);
        assert_eq!(&adj.neighbors[0], &[0u32][..]);
        assert_eq!(&adj.neighbors[1], &[1u32][..]);
    }

    #[test]
    fn empty_centers() {
        let pts = vec![vec![0.0]];
        let adj = CenterAdjacency::build(&pts, &Euclidean, &[], 1.0);
        assert!(adj.is_empty());
        assert_eq!(adj.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_threshold_panics() {
        let pts = vec![vec![0.0]];
        let _ = CenterAdjacency::build(&pts, &Euclidean, &[0], -1.0);
    }
}
