//! Center-to-center neighbor adjacency (the `A` sets of the paper),
//! with pivot-screened construction and per-edge distance bounds.

use mdbscan_grid::{CandidateStats, GridIndex};
use mdbscan_metric::{BatchMetric, PruneStats, PruningConfig};
use mdbscan_parallel::{par_map_ranges, split_even, split_weighted, Csr, ParallelConfig};

/// Pivots used to screen center pairs by the triangle inequality. The
/// Gonzalez ordering makes the first few centers mutually far apart —
/// exactly the spread a pivot set wants.
const ADJ_PIVOTS: usize = 4;

/// Below this many centers the `O(k²)` pair loop is too cheap for the
/// pivot pre-pass to pay for itself.
const ADJ_MIN_CENTERS_FOR_PIVOTS: usize = 16;

/// One upper-triangle adjacency row: `(neighbor, lower bound, upper
/// bound)` per edge, paired per worker chunk with its pruning counters.
type UpperRows = Vec<Vec<(u32, f64, f64)>>;

/// Symmetric adjacency over a center set: `neighbors[e]` lists every center
/// index `e'` (position, not point id) with `dis(e, e') ≤ threshold`,
/// *including* `e` itself, in ascending order.
///
/// For a point `p` with closest center `c_p`, the paper's neighbor ball
/// center set `A_p = {e ∈ E : dis(e, c_p) ≤ threshold}` is exactly
/// `neighbors[c_p]` — Lemma 2 then guarantees
/// `B(p, ε) ∩ X ⊆ ∪_{e ∈ A_p} C_e` when `threshold ≥ 2r̄ + ε`.
///
/// Rows are stored flat ([`Csr`]): the Step 1/3 inner loops walk
/// `neighbors[e]` for every point, so the rows sit in one contiguous
/// allocation instead of one `Vec` per center.
///
/// # Construction and pruning
///
/// [`CenterAdjacency::build_pruned`] screens the `O(k²/2)` candidate
/// pairs against a handful of pivot rows (full distance rows of the
/// first centers): a pair whose pivot-derived lower bound exceeds the
/// threshold is rejected without evaluation, and one whose upper bound
/// is already inside is accepted without evaluation. The *membership*
/// is identical with screening on or off — only
/// [`CenterAdjacency::pruning`] changes.
///
/// Each edge additionally carries sound lower/upper bounds on the
/// center pair's distance ([`CenterAdjacency::lbound_row`] /
/// [`CenterAdjacency::ubound_row`]) — exact when the pair was
/// evaluated, the pivot bounds when it was accepted for free. Step 2 of
/// the exact pipeline uses them for distance-free fragment merges.
#[derive(Debug, Clone)]
pub struct CenterAdjacency {
    /// Per center (by position), the neighboring center positions
    /// (ascending, self included). Index with `neighbors[e]` to get the
    /// row slice.
    pub neighbors: Csr,
    /// Per adjacency entry (aligned with the `neighbors` values): a
    /// sound lower bound on the center pair's distance (exact when the
    /// pair was evaluated; 0 for the self entry).
    pub lbounds: Vec<f64>,
    /// Per adjacency entry: a sound upper bound on the center pair's
    /// distance (`≤ threshold` by membership; exact when evaluated).
    pub ubounds: Vec<f64>,
    /// The distance threshold the adjacency was computed at.
    pub threshold: f64,
    /// Triangle-inequality screening counters of the build.
    pub pruning: PruneStats,
}

impl CenterAdjacency {
    /// Builds the adjacency with default parallelism and pruning. See
    /// [`CenterAdjacency::build_pruned`].
    pub fn build<P: Sync, M: BatchMetric<P> + Sync>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
    ) -> Self {
        Self::build_with(
            points,
            metric,
            centers,
            threshold,
            &ParallelConfig::default(),
        )
    }

    /// Builds the adjacency with explicit parallelism and default
    /// (enabled) pruning. See [`CenterAdjacency::build_pruned`].
    pub fn build_with<P: Sync, M: BatchMetric<P> + Sync>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
        parallel: &ParallelConfig,
    ) -> Self {
        Self::build_pruned(
            points,
            metric,
            centers,
            threshold,
            parallel,
            &PruningConfig::default(),
        )
    }

    /// Builds the adjacency by pairwise early-abandoned distance tests,
    /// parallelized over upper-triangle rows and screened against pivot
    /// rows when `pruning` is enabled.
    ///
    /// `centers` holds point indices into `points`. Without screening:
    /// `O(|E|²/2)` calls to [`mdbscan_metric::Metric::distance_leq`],
    /// independent of the thread count; rows are weighted by their
    /// remaining-triangle size so workers get balanced shares. The
    /// resulting membership is identical for every thread count and
    /// every pruning setting.
    pub fn build_pruned<P: Sync, M: BatchMetric<P> + Sync>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
        parallel: &ParallelConfig,
        pruning: &PruningConfig,
    ) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "adjacency threshold must be non-negative, got {threshold}"
        );
        let k = centers.len();
        let center_ids: Vec<u32> = centers.iter().map(|&c| c as u32).collect();
        let threads = if k >= 256 { parallel.threads() } else { 1 };
        let mut stats = PruneStats::default();

        // Pivot rows: full distance rows of the first centers. Row `p`
        // of the upper triangle needs those distances anyway, so the
        // only extra evaluations are the `≤ np²` pivot-pivot repeats.
        let np = if pruning.enabled && k >= ADJ_MIN_CENTERS_FOR_PIVOTS {
            k.min(ADJ_PIVOTS)
        } else {
            0
        };
        let pivot_rows: Vec<Vec<f64>> = (0..np)
            .map(|p| {
                let query = &points[centers[p]];
                let chunks = par_map_ranges(split_even(k, threads), |r| {
                    let mut out = Vec::new();
                    metric.dist_many(points, query, &center_ids[r], &mut out);
                    out
                });
                chunks.into_iter().flatten().collect()
            })
            .collect();
        // Ledger: the pivot rows double as the first `np` upper-triangle
        // rows (their pair decisions are read off below without further
        // evaluations), so the only *overhead* relative to the unpruned
        // build is the lower-triangle-and-diagonal part of the pivot
        // block — `np(np+1)/2` evaluations, not the full `np·k`.
        stats.anchor_evals += (np * (np + 1) / 2) as u64;

        // Upper triangle, row-parallel: row i holds every j > i within
        // the threshold, each with (lower, upper) distance bounds.
        // Weight = number of pairs the row tests.
        let ranges = split_weighted(k, threads, |i| k - 1 - i);
        let row_chunks: Vec<(UpperRows, PruneStats)> = par_map_ranges(ranges, |rows| {
            let mut local = PruneStats::default();
            let mut surv_ids: Vec<u32> = Vec::new();
            let mut surv_js: Vec<u32> = Vec::new();
            let mut dists: Vec<f64> = Vec::new();
            let out = rows
                .map(|i| {
                    let mut row: Vec<(u32, f64, f64)> = Vec::new();
                    if i < np {
                        // The pivot row already holds this row's exact
                        // distances — zero further evaluations.
                        for (j, &d) in pivot_rows[i].iter().enumerate().skip(i + 1) {
                            if d <= threshold {
                                row.push((j as u32, d, d));
                            }
                        }
                        return row;
                    }
                    let ci = &points[centers[i]];
                    surv_ids.clear();
                    surv_js.clear();
                    // j indexes every pivot row at once; zipping them would
                    // allocate per pair
                    for j in (i + 1)..k {
                        let mut lb = 0.0f64;
                        let mut ub = f64::INFINITY;
                        for pr in &pivot_rows {
                            lb = lb.max((pr[i] - pr[j]).abs());
                            ub = ub.min(pr[i] + pr[j]);
                        }
                        if lb > threshold {
                            local.bound_rejects += 1;
                        } else if ub <= threshold {
                            local.bound_accepts += 1;
                            row.push((j as u32, lb, ub));
                        } else {
                            surv_ids.push(center_ids[j]);
                            surv_js.push(j as u32);
                        }
                    }
                    if !surv_ids.is_empty() {
                        metric.dist_many_within(points, ci, &surv_ids, threshold, &mut dists);
                        for (&j, &d) in surv_js.iter().zip(&dists) {
                            if d.is_finite() {
                                row.push((j, d, d));
                            }
                        }
                        row.sort_unstable_by_key(|&(j, _, _)| j);
                    }
                    row
                })
                .collect();
            (out, local)
        });
        let mut upper: Vec<Vec<(u32, f64, f64)>> = Vec::with_capacity(k);
        for (chunk, local) in row_chunks {
            upper.extend(chunk);
            stats.merge(&local);
        }
        Self::assemble(upper, threshold, stats)
    }

    /// Builds the adjacency from a **grid candidate index** over the
    /// center coordinates instead of the all-pairs pivot screen:
    /// `coords` holds the centers' row-major coordinates (`k × dim`,
    /// exactly the values [`mdbscan_metric::GridCompatible::grid_coords`]
    /// yields), a [`GridIndex`] at cell side `threshold/√dim` is built
    /// over them, and each upper-triangle row only evaluates the pairs
    /// whose cells survive the ring rejection bound.
    ///
    /// The resulting **membership is identical** to
    /// [`CenterAdjacency::build_pruned`]: the ring covers every cell
    /// `B(c_i, threshold)` can touch and the rejection bound is sound,
    /// so exactly the within-threshold pairs survive. Cells whose
    /// member box lies entirely inside the guarded threshold are
    /// accepted **without a distance evaluation** — their edges carry
    /// the sound `(cell_lb, cell_ub)` bounds, exactly analogous to the
    /// pivot build's free-accepts — and only boundary-cell pairs are
    /// evaluated with the [`BatchMetric::dist_many_within`] kernel
    /// (those edges carry the exact distance as both bounds). Sound
    /// bounds are all the distance-free Step-2 merges require; labels
    /// are unaffected. [`CenterAdjacency::pruning`] is zero — no
    /// triangle screen ran; the returned [`CandidateStats`] are the
    /// grid's counters instead (free-accepted members count as
    /// emitted, matching the counting scan's convention). Rejected-cell
    /// tallies include members `j ≤ i` (handled by the symmetric row),
    /// so the reject counter tracks cell work, not unique pairs; it is
    /// deterministic and thread-invariant either way.
    pub fn build_grid<P: Sync, M: BatchMetric<P> + Sync>(
        points: &[P],
        metric: &M,
        centers: &[usize],
        threshold: f64,
        parallel: &ParallelConfig,
        dim: usize,
        coords: Vec<f64>,
    ) -> (Self, CandidateStats) {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "adjacency threshold must be non-negative, got {threshold}"
        );
        let k = centers.len();
        assert_eq!(coords.len(), k * dim, "center coords shape mismatch");
        let center_ids: Vec<u32> = centers.iter().map(|&c| c as u32).collect();
        let threads = if k >= 256 { parallel.threads() } else { 1 };
        // Cell side threshold/(2√d) gives cell diameter ≤ threshold/2:
        // finer than the point grid's ε/√d because here whole-cell free
        // accepts carry the bulk of the work, and a thinner boundary
        // shell (one cell-diagonal thick) leaves fewer pairs needing an
        // evaluation. Correctness is cell-size independent — the ring
        // covers `B(c_i, threshold)` for any side. A zero threshold
        // still needs a positive cell side (any value works: the probe
        // radius is 0, so only the query's own 3^d ring is visited and
        // every pair is evaluated exactly).
        let cell = if threshold > 0.0 {
            threshold / (2.0 * (dim as f64).sqrt())
        } else {
            1.0
        };
        let grid = GridIndex::build(dim, cell, coords);

        let ranges = split_weighted(k, threads, |i| k - 1 - i);
        let row_chunks: Vec<(UpperRows, CandidateStats)> = par_map_ranges(ranges, |rows| {
            let mut local = CandidateStats::default();
            let mut surv_ids: Vec<u32> = Vec::new();
            let mut surv_js: Vec<u32> = Vec::new();
            let mut dists: Vec<f64> = Vec::new();
            let out = rows
                .map(|i| {
                    let mut row: Vec<(u32, f64, f64)> = Vec::new();
                    let q = grid.point_coords(i);
                    surv_js.clear();
                    let mut free_accepts = 0u64;
                    grid.for_each_candidate_cell(
                        q,
                        threshold,
                        &mut local,
                        |members, lb, within| {
                            // Upper triangle only: j ≤ i pairs are decided by
                            // their own (symmetric) row.
                            let js = members.iter().copied().filter(|&j| j as usize > i);
                            if let Some(ub) = within {
                                // Whole cell inside the guarded threshold:
                                // every member is an edge, accepted free with
                                // the sound cell bounds.
                                for j in js {
                                    row.push((j, lb, ub));
                                    free_accepts += 1;
                                }
                            } else {
                                surv_js.extend(js);
                            }
                        },
                    );
                    surv_js.sort_unstable();
                    local.candidates_emitted += free_accepts + surv_js.len() as u64;
                    if !surv_js.is_empty() {
                        let ci = &points[centers[i]];
                        surv_ids.clear();
                        surv_ids.extend(surv_js.iter().map(|&j| center_ids[j as usize]));
                        metric.dist_many_within(points, ci, &surv_ids, threshold, &mut dists);
                        for (&j, &d) in surv_js.iter().zip(&dists) {
                            if d.is_finite() {
                                row.push((j, d, d));
                            }
                        }
                    }
                    row.sort_unstable_by_key(|&(j, _, _)| j);
                    row
                })
                .collect();
            (out, local)
        });
        let mut upper: Vec<Vec<(u32, f64, f64)>> = Vec::with_capacity(k);
        let mut stats = CandidateStats::default();
        for (chunk, local) in row_chunks {
            upper.extend(chunk);
            stats.merge(&local);
        }
        (
            Self::assemble(upper, threshold, PruneStats::default()),
            stats,
        )
    }

    /// Extends an adjacency computed over the first `old.len()` entries
    /// of `centers` (the same center sequence — centers are append-only
    /// under ingest) to all of `centers`, at the old threshold.
    ///
    /// Every old pair decision is reused verbatim: only the
    /// `(k − k₀)·k` new-vs-existing pairs are evaluated (early-abandoned
    /// and row-parallel), instead of the full `O(k²/2)` rebuild. New
    /// center positions are strictly larger than all old ones, so old
    /// rows stay ascending with the fresh edges appended. The resulting
    /// *membership* is identical to a from-scratch build; per-edge
    /// bounds stay sound (old edges keep their recorded bounds, new
    /// edges carry exact distances), which is all the distance-free
    /// Step-2 merges require.
    pub fn extend<P: Sync, M: BatchMetric<P> + Sync>(
        old: &CenterAdjacency,
        points: &[P],
        metric: &M,
        centers: &[usize],
        parallel: &ParallelConfig,
    ) -> Self {
        let k0 = old.len();
        let k = centers.len();
        assert!(k >= k0, "centers are append-only");
        let threshold = old.threshold;
        let center_ids: Vec<u32> = centers.iter().map(|&c| c as u32).collect();
        let threads = if k - k0 >= 8 { parallel.threads() } else { 1 };
        // Fresh pairs: each new center i against every j < i.
        let ranges = split_weighted(k - k0, threads, |r| k0 + r);
        let new_rows: Vec<Vec<(u32, f64)>> = par_map_ranges(ranges, |rows| {
            let mut dists: Vec<f64> = Vec::new();
            rows.map(|r| {
                let i = k0 + r;
                let ci = &points[centers[i]];
                metric.dist_many_within(points, ci, &center_ids[..i], threshold, &mut dists);
                dists
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.is_finite())
                    .map(|(j, &d)| (j as u32, d))
                    .collect()
            })
            .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Upper triangle: old rows keep their recorded edges (> i) and
        // bounds; new edges land below, appended in ascending i order.
        let mut upper: Vec<Vec<(u32, f64, f64)>> = (0..k)
            .map(|i| {
                if i >= k0 {
                    return Vec::new();
                }
                let row = old.neighbors.row(i);
                let lbs = old.lbound_row(i);
                let ubs = old.ubound_row(i);
                row.iter()
                    .zip(lbs)
                    .zip(ubs)
                    .filter(|((&j, _), _)| (j as usize) > i)
                    .map(|((&j, &lo), &hi)| (j, lo, hi))
                    .collect()
            })
            .collect();
        for (r, row) in new_rows.iter().enumerate() {
            let i = (k0 + r) as u32;
            for &(j, d) in row {
                upper[j as usize].push((i, d, d));
            }
        }
        Self::assemble(upper, threshold, old.pruning)
    }

    /// Assembles the symmetric CSR from upper-triangle rows; each row
    /// comes out ascending: mirrored smaller neighbors first (sources
    /// visited in ascending i), then self, then the row's own larger
    /// neighbors. The bound arrays stay aligned with the value array
    /// throughout.
    fn assemble(upper: Vec<Vec<(u32, f64, f64)>>, threshold: f64, stats: PruneStats) -> Self {
        let k = upper.len();
        let mut offsets = vec![0usize; k + 1];
        for (i, row) in upper.iter().enumerate() {
            offsets[i + 1] += row.len() + 1; // + self
            for &(j, _, _) in row {
                offsets[j as usize + 1] += 1;
            }
        }
        for e in 0..k {
            offsets[e + 1] += offsets[e];
        }
        let mut cursor: Vec<usize> = offsets[..k].to_vec();
        let mut values = vec![0u32; offsets[k]];
        let mut lbounds = vec![0.0f64; offsets[k]];
        let mut ubounds = vec![0.0f64; offsets[k]];
        for (i, row) in upper.iter().enumerate() {
            for &(j, lo, hi) in row {
                values[cursor[j as usize]] = i as u32;
                lbounds[cursor[j as usize]] = lo;
                ubounds[cursor[j as usize]] = hi;
                cursor[j as usize] += 1;
            }
            // Mirrored entries for row i come only from sources < i, all
            // already visited, so row i's self slot is next.
            values[cursor[i]] = i as u32;
            cursor[i] += 1;
        }
        for (i, row) in upper.iter().enumerate() {
            for &(j, lo, hi) in row {
                values[cursor[i]] = j;
                lbounds[cursor[i]] = lo;
                ubounds[cursor[i]] = hi;
                cursor[i] += 1;
            }
        }
        debug_assert!(cursor.iter().zip(&offsets[1..]).all(|(c, o)| c == o));

        Self {
            neighbors: Csr::from_parts(offsets, values),
            lbounds,
            ubounds,
            threshold,
            pruning: stats,
        }
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.neighbors.num_rows()
    }

    /// True when there are no centers.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The per-edge distance **lower** bounds of row `e`, aligned with
    /// `self.neighbors[e]`.
    pub fn lbound_row(&self, e: usize) -> &[f64] {
        &self.lbounds[self.neighbors.row_range(e)]
    }

    /// The per-edge distance **upper** bounds of row `e`, aligned with
    /// `self.neighbors[e]`.
    pub fn ubound_row(&self, e: usize) -> &[f64] {
        &self.ubounds[self.neighbors.row_range(e)]
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.neighbors.total_len() * std::mem::size_of::<u32>()
            + (self.neighbors.num_rows() + 1) * std::mem::size_of::<usize>()
            + (self.lbounds.len() + self.ubounds.len()) * std::mem::size_of::<f64>()
    }

    /// Mean neighbor-list size — the empirical `|A_p|`, reported by the
    /// experiment harness against the paper's `O((ε/r̄)^D) + z` bound
    /// (Lemma 3).
    pub fn mean_degree(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.total_len() as f64 / self.neighbors.num_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{Euclidean, Metric};

    #[test]
    fn adjacency_is_symmetric_and_reflexive() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 2.0]).collect();
        let centers: Vec<usize> = (0..10).collect();
        let adj = CenterAdjacency::build(&pts, &Euclidean, &centers, 4.0);
        assert_eq!(adj.len(), 10);
        for e in 0..adj.len() {
            let ns = &adj.neighbors[e];
            assert!(ns.contains(&(e as u32)), "self-neighbor missing");
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "row {e} not sorted");
            for &o in ns {
                assert!(
                    adj.neighbors[o as usize].contains(&(e as u32)),
                    "asymmetric edge {e} -> {o}"
                );
            }
        }
        // center 0 at x=0: neighbors within 4.0 are x=0,2,4 -> 3 entries
        assert_eq!(adj.neighbors[0].len(), 3);
        // middle center sees two on each side plus itself
        assert_eq!(adj.neighbors[5].len(), 5);
        assert!(adj.mean_degree() > 1.0);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let pts: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 31) as f64, (i / 31) as f64 * 1.5])
            .collect();
        let centers: Vec<usize> = (0..400).collect();
        let seq = CenterAdjacency::build_with(
            &pts,
            &Euclidean,
            &centers,
            3.0,
            &ParallelConfig::sequential(),
        );
        for threads in [2usize, 4, 8] {
            let par = CenterAdjacency::build_with(
                &pts,
                &Euclidean,
                &centers,
                3.0,
                &ParallelConfig::new(threads),
            );
            assert_eq!(seq.neighbors, par.neighbors, "threads={threads}");
            assert_eq!(seq.lbounds, par.lbounds, "threads={threads}");
            assert_eq!(seq.ubounds, par.ubounds, "threads={threads}");
        }
    }

    #[test]
    fn pruned_build_matches_unpruned_membership_with_sound_bounds() {
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    (i % 3) as f64 * 40.0 + (i % 17) as f64 * 0.3,
                    (i / 100) as f64 * 40.0 + (i % 13) as f64 * 0.4,
                ]
            })
            .collect();
        let centers: Vec<usize> = (0..300).collect();
        for threshold in [2.0, 10.0, 50.0] {
            let off = CenterAdjacency::build_pruned(
                &pts,
                &Euclidean,
                &centers,
                threshold,
                &ParallelConfig::sequential(),
                &PruningConfig::off(),
            );
            let on = CenterAdjacency::build_pruned(
                &pts,
                &Euclidean,
                &centers,
                threshold,
                &ParallelConfig::sequential(),
                &PruningConfig::default(),
            );
            assert_eq!(off.neighbors, on.neighbors, "threshold={threshold}");
            assert_eq!(off.pruning, PruneStats::default());
            // Every edge's bounds must sandwich the true distance.
            for e in 0..on.len() {
                let row = &on.neighbors[e];
                let lbs = on.lbound_row(e);
                let ubs = on.ubound_row(e);
                for ((&o, &lo), &hi) in row.iter().zip(lbs).zip(ubs) {
                    let d = Euclidean.distance(&pts[centers[e]], &pts[centers[o as usize]]);
                    assert!(
                        lo <= d + 1e-9 && d <= hi + 1e-9,
                        "edge ({e},{o}): bounds [{lo},{hi}] miss d={d}"
                    );
                    assert!(hi <= threshold + 1e-9);
                }
            }
        }
        // On clustered data at a mid threshold the screen must fire.
        let on = CenterAdjacency::build_pruned(
            &pts,
            &Euclidean,
            &centers,
            10.0,
            &ParallelConfig::sequential(),
            &PruningConfig::default(),
        );
        assert!(
            on.pruning.bound_rejects > 0,
            "pivot screen never fired: {:?}",
            on.pruning
        );
    }

    #[test]
    fn grid_build_matches_pruned_membership_with_sound_bounds() {
        let pts: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                vec![
                    (i % 3) as f64 * 40.0 + (i % 17) as f64 * 0.3,
                    (i / 100) as f64 * 40.0 + (i % 13) as f64 * 0.4,
                ]
            })
            .collect();
        let centers: Vec<usize> = (0..300).collect();
        let coords: Vec<f64> = centers.iter().flat_map(|&c| pts[c].clone()).collect();
        let mut total_rejects = 0u64;
        for threshold in [0.0, 2.0, 10.0, 50.0] {
            let generic = CenterAdjacency::build_pruned(
                &pts,
                &Euclidean,
                &centers,
                threshold,
                &ParallelConfig::sequential(),
                &PruningConfig::default(),
            );
            for threads in [1usize, 4] {
                let (grid, stats) = CenterAdjacency::build_grid(
                    &pts,
                    &Euclidean,
                    &centers,
                    threshold,
                    &ParallelConfig::new(threads),
                    2,
                    coords.clone(),
                );
                assert_eq!(
                    generic.neighbors, grid.neighbors,
                    "threshold={threshold} threads={threads}"
                );
                assert_eq!(grid.pruning, PruneStats::default());
                assert!(stats.cells_probed > 0);
                if threads == 1 {
                    total_rejects += stats.candidates_rejected;
                }
                // Grid edges carry sound bounds: exact distances for
                // boundary-cell pairs, cell-box bounds for whole-cell
                // free accepts — either way `lo ≤ d ≤ hi ≤ threshold`.
                for e in 0..grid.len() {
                    let row = &grid.neighbors[e];
                    let lbs = grid.lbound_row(e);
                    let ubs = grid.ubound_row(e);
                    for ((&o, &lo), &hi) in row.iter().zip(lbs).zip(ubs) {
                        if o as usize == e {
                            continue;
                        }
                        let d = Euclidean.distance(&pts[centers[e]], &pts[centers[o as usize]]);
                        assert!(lo <= d, "edge ({e},{o}): lb {lo} > d {d}");
                        assert!(d <= hi, "edge ({e},{o}): d {d} > ub {hi}");
                        assert!(hi <= threshold, "edge ({e},{o}): ub {hi} > {threshold}");
                    }
                }
            }
        }
        // Across the threshold sweep the ring's cell reject must have
        // fired somewhere (boundary cells beyond the radius).
        assert!(total_rejects > 0, "cell reject never fired");
    }

    #[test]
    fn extend_on_grid_built_base_matches_fresh_membership() {
        let pts: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 11) as f64 * 1.3, (i / 11) as f64 * 1.7])
            .collect();
        let centers: Vec<usize> = (0..120).collect();
        let coords80: Vec<f64> = centers[..80].iter().flat_map(|&c| pts[c].clone()).collect();
        let (base, _) = CenterAdjacency::build_grid(
            &pts,
            &Euclidean,
            &centers[..80],
            3.0,
            &ParallelConfig::sequential(),
            2,
            coords80,
        );
        let grown = CenterAdjacency::extend(
            &base,
            &pts,
            &Euclidean,
            &centers,
            &ParallelConfig::sequential(),
        );
        let fresh = CenterAdjacency::build_with(
            &pts,
            &Euclidean,
            &centers,
            3.0,
            &ParallelConfig::sequential(),
        );
        assert_eq!(grown.neighbors, fresh.neighbors);
    }

    #[test]
    fn zero_threshold_only_self() {
        let pts = vec![vec![0.0], vec![1.0]];
        let adj = CenterAdjacency::build(&pts, &Euclidean, &[0, 1], 0.0);
        assert_eq!(&adj.neighbors[0], &[0u32][..]);
        assert_eq!(&adj.neighbors[1], &[1u32][..]);
        assert_eq!(adj.lbound_row(0), &[0.0][..]);
        assert_eq!(adj.ubound_row(0), &[0.0][..]);
    }

    #[test]
    fn empty_centers() {
        let pts = vec![vec![0.0]];
        let adj = CenterAdjacency::build(&pts, &Euclidean, &[], 1.0);
        assert!(adj.is_empty());
        assert_eq!(adj.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_threshold_panics() {
        let pts = vec![vec![0.0]];
        let _ = CenterAdjacency::build(&pts, &Euclidean, &[0], -1.0);
    }
}
