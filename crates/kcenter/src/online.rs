//! The incremental radius-guided net: first-fit netting maintained one
//! point at a time (the streaming pass-1 rule of Algorithm 3).
//!
//! Where [`crate::RadiusGuidedNet::build`] runs the *Gonzalez* greedy
//! (farthest-point selection — a batch algorithm that must see the whole
//! input), this module maintains a net **online**: a new point joins the
//! ball of the first existing center within `r̄` of it, else it becomes a
//! new center. The result is still an `r̄`-net — covering (every point
//! within `r̄` of its center) and packing (centers mutually `> r̄` apart)
//! — which is all the DBSCAN Steps 1–3, Algorithm 2, and the pruning
//! layer require (Lemma 2 only uses covering; the dense shortcut only
//! uses the `2r̄` ball diameter; the `dis(p, c_p)` anchors are recorded
//! exactly as in Algorithm 1).
//!
//! The payoff is a **determinism-by-construction** ingest contract:
//! inserting points `p₀ … pₙ` one batch at a time replays exactly the
//! loop a one-shot [`IncrementalNet::build`] over the full sequence
//! runs, so the maintained net — and therefore every cluster label
//! derived from it — is bit-identical no matter how the sequence was
//! split into batches.
//!
//! Cover sets are kept in an append-only [`ChunkedCsr`] (one sealed
//! chunk per batch; point ids only ever grow, so concatenated rows stay
//! ascending) and flattened into the read-optimized [`Csr`] snapshot at
//! [`IncrementalNet::to_net`] time — a memcpy pass with zero distance
//! evaluations.

use crate::radius_guided::RadiusGuidedNet;
use mdbscan_metric::Metric;
use mdbscan_parallel::{ChunkedCsr, Csr};

/// Indexed access to an append-only point sequence — what
/// [`IncrementalNet::ingest_from`] scans instead of a flat slice, so an
/// engine's chunked point store can feed the first-fit rule **without
/// flattening** on every batch (the lazy-publication path: per-ingest
/// cost proportional to the batch, not to `n`).
///
/// Implementations must be stable: `point(i)` returns the same point
/// for the same `i` forever (points are append-only and never move).
pub trait PointAccess<P> {
    /// Number of points currently stored.
    fn num_points(&self) -> usize;

    /// The point with global id `i` (`i < num_points()`).
    fn point(&self, i: usize) -> &P;
}

impl<P> PointAccess<P> for [P] {
    fn num_points(&self) -> usize {
        self.len()
    }

    fn point(&self, i: usize) -> &P {
        &self[i]
    }
}

/// What one [`IncrementalNet::ingest`] batch changed — the delta an
/// engine needs to invalidate (or incrementally upgrade) per-parameter
/// artifacts.
#[derive(Debug, Clone)]
pub struct IngestDelta {
    /// Index of the first point of the batch.
    pub first_point: usize,
    /// Number of points inserted.
    pub added_points: usize,
    /// `|E|` before the batch.
    pub prev_centers: usize,
    /// Centers created by the batch (positions `prev_centers ..`).
    pub new_centers: usize,
    /// Every center position whose cover set gained members (ascending,
    /// new centers included) — the "dirty balls" of this batch.
    pub dirty_balls: Vec<u32>,
}

/// An `r̄`-net under online first-fit insertion, with the same recorded
/// state as [`RadiusGuidedNet`]: centers, per-point assignment, exact
/// `dis(p, c_p)`, and cover sets.
#[derive(Debug, Clone)]
pub struct IncrementalNet {
    rbar: f64,
    max_centers: usize,
    centers: Vec<usize>,
    assignment: Vec<u32>,
    dist_to_center: Vec<f64>,
    cover: ChunkedCsr,
    /// Exact `dis(c, centers[0])` per center — the first-center anchor
    /// (same trick as streaming pass 1): one evaluation `dis(p, c₀)`
    /// per inserted point rejects most centers' `≤ r̄` tests by the
    /// triangle inequality without evaluating them. Backfilled lazily
    /// for nets adopted via [`IncrementalNet::from_net`].
    center_to_first: Vec<f64>,
    covered: bool,
}

impl IncrementalNet {
    /// An empty net that will insert by the first-fit rule at radius
    /// `rbar`, capped at `max_centers` (use `usize::MAX` for unlimited).
    pub fn new(rbar: f64, max_centers: usize) -> Self {
        assert!(
            rbar.is_finite() && rbar > 0.0,
            "radius bound must be positive and finite, got {rbar}"
        );
        Self {
            rbar,
            max_centers: max_centers.max(1),
            centers: Vec::new(),
            assignment: Vec::new(),
            dist_to_center: Vec::new(),
            cover: ChunkedCsr::new(),
            center_to_first: Vec::new(),
            covered: true,
        }
    }

    /// One-shot build over a full point sequence: identical, by
    /// construction, to `new` followed by any batch split of
    /// [`IncrementalNet::ingest`] over the same sequence.
    pub fn build<P, M: Metric<P>>(points: &[P], metric: &M, rbar: f64, max_centers: usize) -> Self {
        let mut net = Self::new(rbar, max_centers);
        net.ingest(points, 0, metric);
        net
    }

    /// Adopts the state of an already-built net (any covering net with
    /// recorded center distances — e.g. an Algorithm-1 Gonzalez net) so
    /// later insertions extend it by the first-fit rule. The seed
    /// becomes chunk 0 of the cover store; nothing is recomputed.
    pub fn from_net(net: &RadiusGuidedNet, max_centers: usize) -> Self {
        Self::from_net_with_anchors(net, max_centers, Vec::new())
    }

    /// As [`IncrementalNet::from_net`], restoring previously recorded
    /// first-center anchors (see
    /// [`IncrementalNet::first_center_anchors`]) instead of
    /// re-evaluating them on the next ingest — the persistence path
    /// uses this so a reloaded engine's subsequent ingests pay exactly
    /// the evaluations an unrestarted engine would.
    ///
    /// Panics if more anchors are supplied than the net has centers
    /// (fewer is fine: the tail is backfilled lazily, like
    /// [`IncrementalNet::from_net`] backfills all of them).
    pub fn from_net_with_anchors(
        net: &RadiusGuidedNet,
        max_centers: usize,
        anchors: Vec<f64>,
    ) -> Self {
        assert!(
            anchors.len() <= net.centers.len(),
            "{} anchors for {} centers",
            anchors.len(),
            net.centers.len()
        );
        Self {
            rbar: net.rbar,
            max_centers: max_centers.max(1),
            centers: net.centers.clone(),
            assignment: net.assignment.clone(),
            dist_to_center: net.dist_to_center.clone(),
            cover: ChunkedCsr::from_csr(net.cover_sets.clone()),
            center_to_first: anchors,
            covered: net.covered,
        }
    }

    /// The recorded first-center anchor distances `dis(c, centers[0])`,
    /// one per center already anchored (a prefix of the center list —
    /// the rest are backfilled on the next ingest). Persisted so a
    /// restart does not re-pay the backfill evaluations.
    pub fn first_center_anchors(&self) -> &[f64] {
        &self.center_to_first
    }

    /// Inserts `points[first..]` in order by the first-fit rule; see
    /// [`IncrementalNet::ingest_from`] (this is its flat-slice
    /// convenience form).
    pub fn ingest<P, M: Metric<P>>(
        &mut self,
        points: &[P],
        first: usize,
        metric: &M,
    ) -> IngestDelta {
        self.ingest_from(points, first, metric)
    }

    /// Inserts points `first..points.num_points()` in order by the
    /// first-fit rule, sealing the batch as one cover-set chunk.
    /// `first` must equal the number of points already inserted (the
    /// store is append-only). The source is any [`PointAccess`] — a
    /// flat slice or a chunked store — and the insertion order, the
    /// evaluated distances, and therefore the resulting net are
    /// **identical** whichever source supplies the same points.
    ///
    /// Inherently sequential — each insertion's owner scan depends on
    /// the centers created so far — exactly like streaming pass 1; the
    /// result is independent of any batching of the same sequence.
    pub fn ingest_from<P, A, M>(&mut self, points: &A, first: usize, metric: &M) -> IngestDelta
    where
        A: PointAccess<P> + ?Sized,
        M: Metric<P>,
    {
        assert_eq!(first, self.assignment.len(), "points are append-only");
        let prev_centers = self.centers.len();
        // Backfill first-center anchors for centers adopted via
        // `from_net` (one evaluation per seeded center, once).
        for c in self.center_to_first.len()..self.centers.len() {
            self.center_to_first.push(
                metric.distance(points.point(self.centers[0]), points.point(self.centers[c])),
            );
        }
        let total = points.num_points();
        let mut batch_assign: Vec<u32> = Vec::with_capacity(total - first);
        for i in first..total {
            let p = points.point(i);
            // First-fit: the first center within r̄ owns p (streaming
            // pass-1 rule; deterministic — centers are scanned in
            // creation order). The one evaluation `d₀ = dis(p, c₀)` is
            // simultaneously the test against c₀ and the anchor that
            // rejects most later centers for free:
            // `|d₀ − dis(c, c₀)| > r̄` implies `dis(p, c) > r̄`, so the
            // skipped test provably agrees with the evaluated one —
            // the ingest determinism contract is untouched.
            let mut owner: Option<(u32, f64)> = None;
            let mut d0 = 0.0f64;
            if !self.centers.is_empty() {
                d0 = metric.distance(points.point(self.centers[0]), p);
                if d0 <= self.rbar {
                    owner = Some((0, d0));
                } else {
                    for (c, &ci) in self.centers.iter().enumerate().skip(1) {
                        if (d0 - self.center_to_first[c]).abs() > self.rbar {
                            continue;
                        }
                        if let Some(d) = metric.distance_leq(points.point(ci), p, self.rbar) {
                            owner = Some((c as u32, d));
                            break;
                        }
                    }
                }
            }
            let (pos, d) = match owner {
                Some(o) => o,
                None if self.centers.len() < self.max_centers => {
                    let pos = self.centers.len() as u32;
                    self.centers.push(i);
                    self.center_to_first.push(d0);
                    (pos, 0.0)
                }
                None => {
                    // Center cap reached: fall back to the nearest
                    // center (ties toward the earlier one) and mark the
                    // net non-covering, mirroring the Gonzalez
                    // `max_centers` truncation semantics.
                    self.covered = false;
                    let (pos, d) = self
                        .centers
                        .iter()
                        .enumerate()
                        .map(|(c, &ci)| (c as u32, metric.distance(points.point(ci), p)))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("max_centers >= 1 guarantees a center");
                    (pos, d)
                }
            };
            self.assignment.push(pos);
            self.dist_to_center.push(d);
            batch_assign.push(pos);
        }
        // Seal the batch: one chunk, rows = |E| after the batch, values
        // = the batch's global point ids in ascending order per row.
        let k = self.centers.len();
        self.cover.grow_rows(k);
        let mut chunk_rows: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut dirty: Vec<u32> = Vec::new();
        for (j, &pos) in batch_assign.iter().enumerate() {
            let row = &mut chunk_rows[pos as usize];
            if row.is_empty() {
                dirty.push(pos);
            }
            row.push((first + j) as u32);
        }
        dirty.sort_unstable();
        self.cover.append_chunk(Csr::from_rows(&chunk_rows));
        IngestDelta {
            first_point: first,
            added_points: self.assignment.len() - first,
            prev_centers,
            new_centers: k - prev_centers,
            dirty_balls: dirty,
        }
    }

    /// The radius bound `r̄`.
    pub fn rbar(&self) -> f64 {
        self.rbar
    }

    /// Number of points inserted so far.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of centers `|E|`.
    pub fn num_centers(&self) -> usize {
        self.centers.len()
    }

    /// Whether every point is within `r̄` of its center (false only
    /// after a `max_centers` truncation).
    pub fn covered(&self) -> bool {
        self.covered
    }

    /// Publishes the current state as an immutable [`RadiusGuidedNet`]
    /// snapshot: the cover chunks are flattened into one contiguous
    /// [`Csr`]; historical chunks are untouched. Zero distance
    /// evaluations.
    pub fn to_net(&self) -> RadiusGuidedNet {
        RadiusGuidedNet {
            rbar: self.rbar,
            centers: self.centers.clone(),
            assignment: self.assignment.clone(),
            dist_to_center: self.dist_to_center.clone(),
            cover_sets: self.cover.flatten(),
            covered: self.covered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn pts(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 23) as f64 * 0.9, (i % 7) as f64 * 1.3])
            .collect()
    }

    fn assert_valid_net(points: &[Vec<f64>], net: &RadiusGuidedNet) {
        // covering + recorded distances exact
        for (i, p) in points.iter().enumerate() {
            let c = net.centers[net.assignment[i] as usize];
            let d = Euclidean.distance(&points[c], p);
            assert!((d - net.dist_to_center[i]).abs() < 1e-12, "point {i}");
            if net.covered {
                assert!(d <= net.rbar + 1e-12, "point {i} uncovered");
            }
        }
        // packing
        for (a, &ci) in net.centers.iter().enumerate() {
            for &cj in net.centers.iter().skip(a + 1) {
                assert!(Euclidean.distance(&points[ci], &points[cj]) > net.rbar);
            }
        }
        // partition, rows ascending
        assert_eq!(net.cover_sets.total_len(), points.len());
        for (e, row) in net.cover_sets.iter().enumerate() {
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {e} not sorted");
            for &p in row {
                assert_eq!(net.assignment[p as usize] as usize, e);
            }
        }
    }

    #[test]
    fn one_shot_build_is_a_valid_net() {
        let points = pts(200);
        let net = IncrementalNet::build(&points, &Euclidean, 2.0, usize::MAX).to_net();
        assert!(net.covered);
        assert_valid_net(&points, &net);
    }

    #[test]
    fn any_batch_split_matches_the_one_shot_build() {
        let points = pts(157);
        let whole = IncrementalNet::build(&points, &Euclidean, 1.5, usize::MAX).to_net();
        for splits in [vec![1usize, 156], vec![40, 40, 40, 37], vec![157]] {
            let mut net = IncrementalNet::new(1.5, usize::MAX);
            let mut cursor = 0usize;
            let mut total_dirty = 0usize;
            for len in splits {
                let delta = net.ingest(&points[..cursor + len], cursor, &Euclidean);
                assert_eq!(delta.first_point, cursor);
                assert_eq!(delta.added_points, len);
                total_dirty += delta.dirty_balls.len();
                assert!(delta.dirty_balls.windows(2).all(|w| w[0] < w[1]));
                cursor += len;
            }
            assert!(total_dirty > 0);
            let split = net.to_net();
            assert_eq!(split.centers, whole.centers);
            assert_eq!(split.assignment, whole.assignment);
            assert_eq!(split.dist_to_center, whole.dist_to_center);
            assert_eq!(split.cover_sets, whole.cover_sets);
        }
    }

    #[test]
    fn from_net_extends_a_gonzalez_prefix() {
        let points = pts(120);
        let gonzalez = RadiusGuidedNet::build(&points[..60], &Euclidean, 2.5);
        let mut net = IncrementalNet::from_net(&gonzalez, usize::MAX);
        let delta = net.ingest(&points, 60, &Euclidean);
        assert_eq!(delta.prev_centers, gonzalez.centers.len());
        let grown = net.to_net();
        assert_eq!(
            &grown.centers[..gonzalez.centers.len()],
            &gonzalez.centers[..]
        );
        assert_valid_net(&points, &grown);
    }

    #[test]
    fn max_centers_truncates_and_uncovers() {
        let points: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 * 10.0]).collect();
        let net = IncrementalNet::build(&points, &Euclidean, 1.0, 3);
        assert_eq!(net.num_centers(), 3);
        assert!(!net.covered());
        let snap = net.to_net();
        assert!(!snap.covered);
        assert_eq!(snap.cover_sets.total_len(), 30);
    }
}
