//! Randomized k-center with outliers (Ding–Yu–Wang, ESA 2019).
//!
//! This is the pre-processing routine that the DYW_DBSCAN baseline
//! (Ding, Yang, Wang, IJCAI 2021) relies on. Each round the next center is
//! sampled **uniformly from the `(1+η)·z̃` farthest points**; with
//! probability `η/(1+η)` the sample is an inlier, in which case the round
//! makes the same progress as the deterministic Gonzalez step. The paper
//! under reproduction (§3.3) criticizes exactly the knobs visible in this
//! signature: the outlier estimate `z̃` and the manual termination budget,
//! plus the per-round failure probability — all of which its own
//! Algorithm 1 removes.

use mdbscan_metric::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Output of [`kcenter_with_outliers`].
#[derive(Debug, Clone)]
pub struct OutlierKCenter {
    /// Point indices of the selected centers, in selection order.
    pub centers: Vec<usize>,
    /// For each point, the position in `centers` of its closest center.
    pub assignment: Vec<u32>,
    /// For each point, the distance to its closest center.
    pub dist_to_center: Vec<f64>,
    /// Number of points left farther than `rbar` from every center when
    /// the run stopped (ideally ≤ z̃).
    pub uncovered: usize,
    /// Whether the run stopped because coverage was reached (as opposed to
    /// exhausting `max_centers`).
    pub converged: bool,
}

/// Greedy k-center with outliers: sample each new center uniformly among
/// the `(1+eta)·z_estimate` farthest points; stop when at most `z_estimate`
/// points remain farther than `rbar` from the centers, or after
/// `max_centers` rounds.
///
/// Deterministic given `seed`. Panics on empty input or non-positive
/// `rbar`/`eta`.
pub fn kcenter_with_outliers<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    rbar: f64,
    z_estimate: usize,
    eta: f64,
    max_centers: usize,
    seed: u64,
) -> OutlierKCenter {
    assert!(!points.is_empty(), "k-center with outliers on empty set");
    assert!(rbar.is_finite() && rbar > 0.0, "rbar must be positive");
    assert!(eta > 0.0, "eta must be positive");
    let n = points.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let first = rng.random_range(0..n);
    let mut centers = vec![first];
    let mut assignment = vec![0u32; n];
    let mut dist: Vec<f64> = points
        .iter()
        .map(|p| metric.distance(&points[first], p))
        .collect();
    dist[first] = 0.0;

    let sample_pool = (((1.0 + eta) * z_estimate as f64).ceil() as usize).clamp(1, n);

    loop {
        // Points still uncovered at radius rbar.
        let uncovered = dist.iter().filter(|&&d| d > rbar).count();
        if uncovered <= z_estimate || centers.len() >= max_centers.max(1) {
            return OutlierKCenter {
                centers,
                assignment,
                dist_to_center: dist,
                uncovered,
                converged: uncovered <= z_estimate,
            };
        }
        // Rank points by distance and sample among the farthest pool.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| dist[b].total_cmp(&dist[a]));
        let pick = order[rng.random_range(0..sample_pool)];
        if dist[pick] == 0.0 {
            // Degenerate: pool collapsed onto existing centers.
            return OutlierKCenter {
                centers,
                assignment,
                dist_to_center: dist,
                uncovered,
                converged: false,
            };
        }
        let c = centers.len() as u32;
        centers.push(pick);
        for (i, p) in points.iter().enumerate() {
            if let Some(nd) = metric.distance_leq(&points[pick], p, dist[i]) {
                if nd < dist[i] {
                    dist[i] = nd;
                    assignment[i] = c;
                }
            }
        }
        dist[pick] = 0.0;
        assignment[pick] = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    /// Two tight blobs plus scattered outliers.
    fn blobs_with_outliers() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![(i % 10) as f64 * 0.01, 0.0]);
            pts.push(vec![100.0 + (i % 10) as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![1e4 + i as f64 * 1e3, 5e3]);
        }
        pts
    }

    #[test]
    fn covers_inliers_with_few_centers() {
        let pts = blobs_with_outliers();
        let res = kcenter_with_outliers(&pts, &Euclidean, 1.0, 5, 1.0, 50, 7);
        assert!(res.converged, "should cover all but 5 outliers");
        assert!(res.uncovered <= 5);
        // Inliers (first 100 points) are covered...
        let covered_inliers = (0..100).filter(|&i| res.dist_to_center[i] <= 1.0).count();
        assert_eq!(covered_inliers, 100);
    }

    #[test]
    fn underestimating_z_burns_centers() {
        let pts = blobs_with_outliers();
        // z̃ = 0 forces it to chase every outlier (the failure mode §3.3
        // warns about): needs ~2 + 5 centers instead of 2.
        let res = kcenter_with_outliers(&pts, &Euclidean, 1.0, 0, 1.0, 50, 7);
        assert!(res.centers.len() >= 7);
    }

    #[test]
    fn center_budget_respected() {
        let pts = blobs_with_outliers();
        let res = kcenter_with_outliers(&pts, &Euclidean, 0.001, 0, 1.0, 3, 7);
        assert!(res.centers.len() <= 3);
        assert!(!res.converged);
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs_with_outliers();
        let a = kcenter_with_outliers(&pts, &Euclidean, 1.0, 5, 1.0, 50, 42);
        let b = kcenter_with_outliers(&pts, &Euclidean, 1.0, 5, 1.0, 50, 42);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn duplicate_only_input_converges() {
        let pts = vec![vec![3.0]; 9];
        let res = kcenter_with_outliers(&pts, &Euclidean, 0.5, 0, 1.0, 10, 1);
        assert_eq!(res.centers.len(), 1);
        assert_eq!(res.uncovered, 0);
        assert!(res.converged);
    }
}
