//! Vanilla Gonzalez greedy `k`-center.

use crate::radius_guided::{sweep_chunk, SWEEP_MIN_PER_THREAD};
use mdbscan_metric::Metric;
use mdbscan_parallel::{sweep_rounds, ParallelConfig, SweepTask};

/// Output of [`gonzalez`].
#[derive(Debug, Clone)]
pub struct KCenterResult {
    /// Point indices of the selected centers, in selection order.
    pub centers: Vec<usize>,
    /// For each point, the position (in `centers`) of its closest center.
    pub assignment: Vec<u32>,
    /// For each point, the distance to its closest center.
    pub dist_to_center: Vec<f64>,
    /// The clustering radius: `max_p dis(p, centers)`, which is at most
    /// twice the optimal `k`-center radius.
    pub radius: f64,
}

/// Gonzalez's farthest-point greedy for `k`-center clustering
/// (2-approximation; Gonzalez 1985). Deterministic given `first`, the index
/// of the seed center.
///
/// Runs `k` iterations of `O(n)` distance evaluations each. Panics if
/// `points` is empty, `k == 0`, or `first` is out of range.
pub fn gonzalez<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    k: usize,
    first: usize,
) -> KCenterResult {
    gonzalez_with(points, metric, k, first, &ParallelConfig::default())
}

/// As [`gonzalez`], with an explicit thread-count knob for the
/// per-iteration sweep and farthest-point reduction. Both are
/// deterministic for any thread count (ties break on point index), so
/// every setting returns the same centers and assignment.
pub fn gonzalez_with<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    k: usize,
    first: usize,
    parallel: &ParallelConfig,
) -> KCenterResult {
    assert!(!points.is_empty(), "k-center of an empty set");
    assert!(k >= 1, "k must be at least 1");
    assert!(first < points.len(), "seed index out of range");
    let n = points.len();
    let threads = parallel.threads();
    let mut centers = vec![first];
    // Same persistent-worker rounds as Algorithm 1; only the stopping
    // rule differs (fixed k, or duplicate saturation).
    let (dist, assignment) = sweep_rounds(
        n,
        threads,
        SWEEP_MIN_PER_THREAD,
        SweepTask {
            center: first,
            center_pos: 0,
            init: true,
        },
        |task, offset, dist_chunk, assign_chunk| {
            sweep_chunk(points, metric, task, offset, dist_chunk, assign_chunk)
        },
        |far, far_d| {
            if centers.len() >= k.min(n) || far_d == 0.0 {
                // far_d == 0: every remaining point duplicates a center
                return None;
            }
            let c = centers.len() as u32;
            centers.push(far);
            Some(SweepTask {
                center: far,
                center_pos: c,
                init: false,
            })
        },
    );
    let radius = dist.iter().copied().fold(0.0, f64::max);
    KCenterResult {
        centers,
        assignment,
        dist_to_center: dist,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(vec![i as f64 * 0.1, 0.0]);
            v.push(vec![100.0 + i as f64 * 0.1, 0.0]);
        }
        v
    }

    #[test]
    fn k2_separates_blobs() {
        let pts = two_blobs();
        let res = gonzalez(&pts, &Euclidean, 2, 0);
        assert_eq!(res.centers.len(), 2);
        assert!(res.radius < 2.0, "radius {} should be small", res.radius);
        // centers in different blobs
        let c0 = pts[res.centers[0]][0];
        let c1 = pts[res.centers[1]][0];
        assert!((c0 < 50.0) != (c1 < 50.0));
        // assignment is the closest center
        for (i, p) in pts.iter().enumerate() {
            let a = res.assignment[i] as usize;
            let da = Euclidean.distance(&pts[res.centers[a]], p);
            for &c in &res.centers {
                assert!(da <= Euclidean.distance(&pts[c], p) + 1e-12);
            }
            assert!((res.dist_to_center[i] - da).abs() < 1e-12);
        }
    }

    #[test]
    fn k_larger_than_distinct_points_stops_early() {
        let pts = vec![vec![0.0], vec![0.0], vec![1.0]];
        let res = gonzalez(&pts, &Euclidean, 10, 0);
        assert_eq!(res.centers.len(), 2);
        assert_eq!(res.radius, 0.0);
    }

    #[test]
    fn radius_is_two_approx_on_line() {
        // 9 points on a line, k=3: optimal radius 1 (centers at 1,4,7).
        let pts: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        let res = gonzalez(&pts, &Euclidean, 3, 0);
        assert!(
            res.radius <= 2.0 + 1e-12,
            "2-approx bound, got {}",
            res.radius
        );
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let pts: Vec<Vec<f64>> = (0..6000)
            .map(|i| vec![(i % 83) as f64, (i % 71) as f64])
            .collect();
        let seq = gonzalez_with(&pts, &Euclidean, 12, 0, &ParallelConfig::sequential());
        for threads in [2usize, 8] {
            let par = gonzalez_with(&pts, &Euclidean, 12, 0, &ParallelConfig::new(threads));
            assert_eq!(seq.centers, par.centers, "threads={threads}");
            assert_eq!(seq.assignment, par.assignment, "threads={threads}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        let pts: Vec<Vec<f64>> = vec![];
        let _ = gonzalez(&pts, &Euclidean, 1, 0);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let pts = vec![vec![0.0]];
        let _ = gonzalez(&pts, &Euclidean, 0, 0);
    }
}
