//! Byte codecs for the net and the center adjacency — the two
//! Algorithm-1 products every solver consumes. Decoding re-checks the
//! structural invariants (aligned array lengths, in-range positions) as
//! typed format errors so a corrupt artifact can never masquerade as a
//! valid net.

use crate::adjacency::CenterAdjacency;
use crate::radius_guided::RadiusGuidedNet;
use mdbscan_metric::PruneStats;
use mdbscan_parallel::Csr;
use mdbscan_persist::{ByteReader, ByteWriter, PersistError};

impl RadiusGuidedNet {
    /// Appends the full net: `r̄` (exact bits), centers, per-point
    /// assignment, the exact `dis(p, c_p)` anchors, the flat cover
    /// sets, and the covering flag.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_f64(self.rbar);
        out.put_usizes(&self.centers);
        out.put_u32s(&self.assignment);
        out.put_f64s(&self.dist_to_center);
        self.cover_sets.encode(out);
        out.put_bool(self.covered);
    }

    /// Reads a net written by [`RadiusGuidedNet::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let rbar = r.get_f64()?;
        let centers = r.get_usizes()?;
        let assignment = r.get_u32s()?;
        let dist_to_center = r.get_f64s()?;
        let cover_sets = Csr::decode(r)?;
        let covered = r.get_bool()?;
        if !(rbar.is_finite() && rbar > 0.0) {
            return Err(r.err(format!("net radius {rbar} not positive and finite")));
        }
        if dist_to_center.len() != assignment.len() {
            return Err(r.err(format!(
                "{} anchor distances for {} assigned points",
                dist_to_center.len(),
                assignment.len()
            )));
        }
        if cover_sets.num_rows() != centers.len() || cover_sets.total_len() != assignment.len() {
            return Err(r.err("cover sets do not partition the assigned points"));
        }
        if let Some(&bad) = assignment
            .iter()
            .find(|&&a| a as usize >= centers.len().max(1))
        {
            return Err(r.err(format!(
                "assignment references center {bad} of {}",
                centers.len()
            )));
        }
        Ok(RadiusGuidedNet {
            rbar,
            centers,
            assignment,
            dist_to_center,
            cover_sets,
            covered,
        })
    }
}

impl CenterAdjacency {
    /// Appends the neighbor rows, the per-edge lower/upper distance
    /// bounds, the threshold, and the build-time pruning ledger.
    pub fn encode(&self, out: &mut ByteWriter) {
        self.neighbors.encode(out);
        out.put_f64s(&self.lbounds);
        out.put_f64s(&self.ubounds);
        out.put_f64(self.threshold);
        self.pruning.encode(out);
    }

    /// Reads an adjacency written by [`CenterAdjacency::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let neighbors = Csr::decode(r)?;
        let lbounds = r.get_f64s()?;
        let ubounds = r.get_f64s()?;
        let threshold = r.get_f64()?;
        let pruning = PruneStats::decode(r)?;
        if lbounds.len() != neighbors.total_len() || ubounds.len() != neighbors.total_len() {
            return Err(r.err(format!(
                "{} lower / {} upper bounds for {} adjacency edges",
                lbounds.len(),
                ubounds.len(),
                neighbors.total_len()
            )));
        }
        // Self-consistency: rows and values both index center
        // positions, so every stored neighbor must name an existing row
        // — otherwise the first query walking the row would panic.
        let rows = neighbors.num_rows();
        if let Some(&bad) = neighbors.values().iter().find(|&&v| v as usize >= rows) {
            return Err(r.err(format!(
                "adjacency references center position {bad} of {rows}"
            )));
        }
        Ok(CenterAdjacency {
            neighbors,
            lbounds,
            ubounds,
            threshold,
            pruning,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn pts() -> Vec<Vec<f64>> {
        (0..90)
            .map(|i| vec![(i % 13) as f64 * 0.8, (i % 7) as f64 * 1.1])
            .collect()
    }

    #[test]
    fn net_round_trips_bit_exactly() {
        let points = pts();
        let net = RadiusGuidedNet::build(&points, &Euclidean, 1.5);
        let mut w = ByteWriter::new();
        net.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("net", &bytes);
        let back = RadiusGuidedNet::decode(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back.rbar.to_bits(), net.rbar.to_bits());
        assert_eq!(back.centers, net.centers);
        assert_eq!(back.assignment, net.assignment);
        assert_eq!(
            back.dist_to_center
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>(),
            net.dist_to_center
                .iter()
                .map(|d| d.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(back.cover_sets, net.cover_sets);
        assert_eq!(back.covered, net.covered);
    }

    #[test]
    fn adjacency_round_trips_with_bounds() {
        let points = pts();
        let net = RadiusGuidedNet::build(&points, &Euclidean, 1.5);
        let adj = net.neighbor_adjacency(&points, &Euclidean, 4.0);
        let mut w = ByteWriter::new();
        adj.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("adjacency", &bytes);
        let back = CenterAdjacency::decode(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back.neighbors, adj.neighbors);
        assert_eq!(back.lbounds, adj.lbounds);
        assert_eq!(back.ubounds, adj.ubounds);
        assert_eq!(back.threshold, adj.threshold);
        assert_eq!(back.pruning, adj.pruning);
    }

    #[test]
    fn misaligned_sections_fail_typed() {
        let points = pts();
        let net = RadiusGuidedNet::build(&points, &Euclidean, 1.5);
        let mut w = ByteWriter::new();
        w.put_f64(net.rbar);
        w.put_usizes(&net.centers);
        w.put_u32s(&net.assignment);
        w.put_f64s(&net.dist_to_center[..3]); // wrong length
        net.cover_sets.encode(&mut w);
        w.put_bool(true);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("net", &bytes);
        assert!(matches!(
            RadiusGuidedNet::decode(&mut r),
            Err(PersistError::Format { .. })
        ));
    }
}
