//! Algorithm 1: radius-guided Gonzalez.

use crate::adjacency::CenterAdjacency;
use mdbscan_metric::Metric;
use mdbscan_parallel::{sweep_rounds, Csr, ParallelConfig, SweepTask};

/// Points per worker below which the sweep stays sequential — the
/// distance evaluations must outweigh the thread-spawn cost.
pub(crate) const SWEEP_MIN_PER_THREAD: usize = 4096;

/// Knobs for [`RadiusGuidedNet::build_with`]. Plain-old-data (`Copy`),
/// so an owning engine can stash and replay it freely.
#[derive(Debug, Clone, Copy)]
pub struct BuildOptions {
    /// Index of the arbitrary first center `p₀` (paper line 1). Default 0.
    pub first: usize,
    /// Worker threads for the per-iteration distance sweep and the
    /// farthest-point reduction. The sweep is embarrassingly parallel
    /// and the reduction breaks ties on point index, so the result is
    /// **identical for every thread count** — the default is the
    /// machine's available parallelism. (Earlier revisions defaulted to
    /// one thread "for determinism"; determinism now holds by
    /// construction.)
    pub parallel: ParallelConfig,
    /// Hard cap on `|E|`; `usize::MAX` by default. A safety valve for
    /// adversarial inputs where `r̄` was chosen far below the data's
    /// resolution (Lemma 1 bounds `|E|` by `O((Δ/r̄)^D) + z`, but `D` of
    /// the *whole* input is unbounded).
    pub max_centers: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            first: 0,
            parallel: ParallelConfig::default(),
            max_centers: usize::MAX,
        }
    }
}

/// The output of the radius-guided Gonzalez greedy (paper Algorithm 1): an
/// `r̄`-net `E` of the input with its Voronoi decomposition.
///
/// Properties (proved in §2 of the paper, certified by the tests below):
///
/// * **covering**: every point is within `r̄` of its center
///   (`dist_to_center[p] ≤ r̄`), except when `max_centers` truncated the run
///   (then [`RadiusGuidedNet::covered`] is false);
/// * **packing**: distinct centers are more than `r̄` apart;
/// * the cover sets `C_e` partition the input.
///
/// The net depends only on `(X, dis, r̄)` — *not* on `(ε, MinPts)` — which
/// is what makes parameter tuning cheap (Remark 5/6): build once with
/// `r̄ ≤ ε₀/2`, then reuse for every `(ε, MinPts)` with `ε ≥ ε₀`. It also
/// does not depend on the thread count used to build it.
#[derive(Debug, Clone)]
pub struct RadiusGuidedNet {
    /// The radius bound `r̄` the net was built with.
    pub rbar: f64,
    /// Point indices of the centers `E`, in insertion order.
    pub centers: Vec<usize>,
    /// For each point, the position in `centers` of its closest center
    /// `c_p` (ties broken toward the earlier center).
    pub assignment: Vec<u32>,
    /// For each point, `dis(p, c_p)`.
    pub dist_to_center: Vec<f64>,
    /// Cover sets `C_e`: for each center, the points assigned to it,
    /// ascending — every point appears in exactly one row. Stored flat
    /// (offsets + values) so the Step 1–3 inner loops stream contiguous
    /// memory.
    pub cover_sets: Csr,
    /// Whether the greedy reached `d_max ≤ r̄` (false only when truncated
    /// by `max_centers`).
    pub covered: bool,
}

impl RadiusGuidedNet {
    /// Runs Algorithm 1 with default options (first center = point 0,
    /// sweep parallelized over available cores).
    ///
    /// Panics if `points` is empty or `rbar` is not positive and finite.
    pub fn build<P: Sync, M: Metric<P> + Sync>(points: &[P], metric: &M, rbar: f64) -> Self {
        Self::build_with(points, metric, rbar, &BuildOptions::default())
    }

    /// Runs Algorithm 1 with explicit options.
    pub fn build_with<P: Sync, M: Metric<P> + Sync>(
        points: &[P],
        metric: &M,
        rbar: f64,
        opts: &BuildOptions,
    ) -> Self {
        assert!(!points.is_empty(), "Algorithm 1 on an empty set");
        assert!(
            rbar.is_finite() && rbar > 0.0,
            "radius bound must be positive and finite, got {rbar}"
        );
        assert!(opts.first < points.len(), "first-center index out of range");
        let n = points.len();
        let threads = opts.parallel.threads();
        let mut centers: Vec<usize> = vec![opts.first];
        let mut covered = true;
        // Persistent workers sweep rounds until the coverage test (or the
        // center cap) stops the greedy — one thread spawn per worker for
        // the whole build, not per iteration.
        let (dist, assignment) = sweep_rounds(
            n,
            threads,
            SWEEP_MIN_PER_THREAD,
            SweepTask {
                center: opts.first,
                center_pos: 0,
                init: true,
            },
            |task, offset, dist_chunk, assign_chunk| {
                sweep_chunk(points, metric, task, offset, dist_chunk, assign_chunk)
            },
            |far, far_d| {
                if far_d <= rbar || centers.len() >= opts.max_centers.max(1) {
                    covered = far_d <= rbar;
                    return None;
                }
                let c = centers.len() as u32;
                centers.push(far);
                Some(SweepTask {
                    center: far,
                    center_pos: c,
                    init: false,
                })
            },
        );
        finish(centers, assignment, dist, rbar, covered)
    }

    /// Number of points the net was built over.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when built over zero points (cannot happen via `build`, but
    /// keeps the API total).
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Computes the neighbor-ball adjacency at `threshold`: for every
    /// center `e`, the centers `e'` with `dis(e, e') ≤ threshold`
    /// (including `e` itself).
    ///
    /// With `threshold = 2r̄ + ε` this is exactly the paper's `A_p` for
    /// every `p ∈ C_e` (definition (1)); the ρ-approximate algorithm uses
    /// `4r̄ + ε` (definition (13)). Cost: `|E|²/2` early-abandoned distance
    /// evaluations — independent of `n`, so re-running it per `(ε, MinPts)`
    /// choice is the cheap part of parameter tuning.
    pub fn neighbor_adjacency<P: Sync, M: mdbscan_metric::BatchMetric<P> + Sync>(
        &self,
        points: &[P],
        metric: &M,
        threshold: f64,
    ) -> CenterAdjacency {
        CenterAdjacency::build(points, metric, &self.centers, threshold)
    }
}

/// One chunk of the sweep against the newly added center (paper line 6).
/// `task.init` seeds the arrays instead of taking minima; the center's
/// own slot is pinned to distance 0 in place of the post-sweep fixup the
/// sequential formulation uses. Element-local, so the chunking is
/// invisible in the result.
pub(crate) fn sweep_chunk<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    task: &SweepTask,
    offset: usize,
    dist_chunk: &mut [f64],
    assign_chunk: &mut [u32],
) {
    let cpoint = &points[task.center];
    let points_chunk = &points[offset..offset + dist_chunk.len()];
    for (i, ((p, d), a)) in points_chunk
        .iter()
        .zip(dist_chunk.iter_mut())
        .zip(assign_chunk.iter_mut())
        .enumerate()
    {
        if offset + i == task.center {
            *d = 0.0;
            *a = task.center_pos;
        } else if task.init {
            *d = metric.distance(cpoint, p);
            *a = task.center_pos;
        } else if let Some(nd) = metric.distance_leq(cpoint, p, *d) {
            // `<` keeps ties on the earlier center, matching the
            // paper's "arbitrarily pick one" determinism contract.
            if nd < *d {
                *d = nd;
                *a = task.center_pos;
            }
        }
    }
}

fn finish(
    centers: Vec<usize>,
    assignment: Vec<u32>,
    dist: Vec<f64>,
    rbar: f64,
    covered: bool,
) -> RadiusGuidedNet {
    let cover_sets = Csr::from_assignment(&assignment, centers.len());
    RadiusGuidedNet {
        rbar,
        centers,
        assignment,
        dist_to_center: dist,
        cover_sets,
        covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{CountingMetric, Euclidean};

    fn line(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64]).collect()
    }

    fn check_net_properties(pts: &[Vec<f64>], net: &RadiusGuidedNet) {
        // covering
        for (i, p) in pts.iter().enumerate() {
            let c = net.centers[net.assignment[i] as usize];
            let d = Euclidean.distance(&pts[c], p);
            assert!((d - net.dist_to_center[i]).abs() < 1e-12);
            if net.covered {
                assert!(
                    d <= net.rbar + 1e-12,
                    "point {i} at {d} > rbar {}",
                    net.rbar
                );
            }
            // closest center
            for &e in &net.centers {
                assert!(d <= Euclidean.distance(&pts[e], p) + 1e-12);
            }
        }
        // packing
        for (a, &ci) in net.centers.iter().enumerate() {
            for &cj in net.centers.iter().skip(a + 1) {
                assert!(
                    Euclidean.distance(&pts[ci], &pts[cj]) > net.rbar,
                    "centers {ci},{cj} violate packing"
                );
            }
        }
        // partition
        assert_eq!(net.cover_sets.total_len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for (e, set) in net.cover_sets.iter().enumerate() {
            for &p in set {
                assert!(!seen[p as usize]);
                seen[p as usize] = true;
                assert_eq!(net.assignment[p as usize] as usize, e);
            }
        }
    }

    #[test]
    fn net_on_a_line() {
        let pts = line(100);
        let net = RadiusGuidedNet::build(&pts, &Euclidean, 5.0);
        assert!(net.covered);
        assert!(net.centers.len() >= 10, "needs >= Δ/2r̄ centers");
        check_net_properties(&pts, &net);
    }

    #[test]
    fn tiny_radius_promotes_every_point() {
        let pts = line(20);
        let net = RadiusGuidedNet::build(&pts, &Euclidean, 0.5);
        assert_eq!(net.centers.len(), 20);
        assert!(net.covered);
        check_net_properties(&pts, &net);
    }

    #[test]
    fn huge_radius_single_center() {
        let pts = line(20);
        let net = RadiusGuidedNet::build(&pts, &Euclidean, 100.0);
        assert_eq!(net.centers.len(), 1);
        assert_eq!(net.centers[0], 0);
        assert!(net.covered);
    }

    #[test]
    fn duplicates_are_fine() {
        let pts = vec![vec![0.0]; 7];
        let net = RadiusGuidedNet::build(&pts, &Euclidean, 1.0);
        assert_eq!(net.centers.len(), 1);
        assert_eq!(net.cover_sets[0].len(), 7);
    }

    #[test]
    fn max_centers_truncates() {
        let pts = line(100);
        let opts = BuildOptions {
            max_centers: 3,
            ..Default::default()
        };
        let net = RadiusGuidedNet::build_with(&pts, &Euclidean, 0.1, &opts);
        assert_eq!(net.centers.len(), 3);
        assert!(!net.covered);
    }

    #[test]
    fn custom_first_center() {
        let pts = line(50);
        let opts = BuildOptions {
            first: 25,
            ..Default::default()
        };
        let net = RadiusGuidedNet::build_with(&pts, &Euclidean, 10.0, &opts);
        assert_eq!(net.centers[0], 25);
        check_net_properties(&pts, &net);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let pts: Vec<Vec<f64>> = (0..9000)
            .map(|i| vec![(i % 97) as f64, (i % 89) as f64 * 0.5])
            .collect();
        let seq = RadiusGuidedNet::build_with(
            &pts,
            &Euclidean,
            7.0,
            &BuildOptions {
                parallel: ParallelConfig::sequential(),
                ..Default::default()
            },
        );
        for threads in [2usize, 4, 8] {
            let par = RadiusGuidedNet::build_with(
                &pts,
                &Euclidean,
                7.0,
                &BuildOptions {
                    parallel: ParallelConfig::new(threads),
                    ..Default::default()
                },
            );
            assert_eq!(seq.centers, par.centers, "threads={threads}");
            assert_eq!(seq.assignment, par.assignment, "threads={threads}");
            assert_eq!(seq.cover_sets, par.cover_sets, "threads={threads}");
        }
    }

    #[test]
    fn linear_distance_cost_per_iteration() {
        let pts = line(500);
        let counting = CountingMetric::new(Euclidean);
        let opts = BuildOptions {
            parallel: ParallelConfig::sequential(),
            ..Default::default()
        };
        let net = RadiusGuidedNet::build_with(&pts, &counting, 50.0, &opts);
        // Each iteration sweeps at most n points.
        let iters = net.centers.len() as u64;
        assert!(
            counting.count() <= iters * 500,
            "count {} > iters {} * n",
            counting.count(),
            iters
        );
    }

    #[test]
    #[should_panic]
    fn zero_radius_panics() {
        let pts = line(5);
        let _ = RadiusGuidedNet::build(&pts, &Euclidean, 0.0);
    }

    #[test]
    #[should_panic]
    fn nan_radius_panics() {
        let pts = line(5);
        let _ = RadiusGuidedNet::build(&pts, &Euclidean, f64::NAN);
    }
}
