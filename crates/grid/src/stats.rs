//! Candidate-generation counters, mirroring the shape of the
//! workspace's `PruneStats`.

/// Counters of grid candidate generation: how many cells a run probed
/// and how many candidate points the cell verdicts emitted or rejected.
///
/// Like `PruneStats`, the counters are plain sums of deterministic
/// per-query contributions, so they are identical across thread counts.
/// They measure work *performed by a run*: artifacts replayed from an
/// engine cache contribute nothing (same as distance-evaluation
/// counters on a cache hit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CandidateStats {
    /// Non-empty cells examined by probe rings.
    pub cells_probed: u64,
    /// Candidate points emitted for consideration: members of
    /// wholesale-accepted cells plus members of boundary cells handed
    /// to the metric.
    pub candidates_emitted: u64,
    /// Candidate points excluded by a cell-level bound without any
    /// distance evaluation (members of rejected cells).
    pub candidates_rejected: u64,
}

impl CandidateStats {
    /// Accumulates another stats block (used when reducing per-worker
    /// or per-phase counters).
    pub fn merge(&mut self, other: &CandidateStats) {
        self.cells_probed += other.cells_probed;
        self.candidates_emitted += other.candidates_emitted;
        self.candidates_rejected += other.candidates_rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CandidateStats {
            cells_probed: 1,
            candidates_emitted: 2,
            candidates_rejected: 3,
        };
        a.merge(&CandidateStats {
            cells_probed: 10,
            candidates_emitted: 20,
            candidates_rejected: 30,
        });
        assert_eq!(
            a,
            CandidateStats {
                cells_probed: 11,
                candidates_emitted: 22,
                candidates_rejected: 33,
            }
        );
    }
}
