//! The grid index proper: canonical sorted cell buckets, ring probes,
//! and the incremental extend path.

use crate::stats::CandidateStats;

/// Largest ambient dimension the engine will build a grid for. Probe
/// rings visit `O((2√d + 3)^d)` cells, so past dimension 3 the generic
/// net-anchored path is the better tool and the engine falls back.
pub const GRID_MAX_DIM: usize = 3;

/// Hard cap on the dimension this crate will bin at all (probe scratch
/// is stack-allocated at this size). [`GRID_MAX_DIM`] is the *policy*
/// bound engines gate on; this is the structural one.
pub const MAX_BIN_DIM: usize = 8;

/// Empty slot marker in the cell hash table.
const EMPTY: u32 = u32::MAX;

/// Relative width of the guard band around cell verdicts; see the
/// crate docs ("Soundness guard for cell verdicts").
const GUARD: f64 = 1e-9;

/// Probe-box volume above which [`GridIndex::visit_ring`] abandons the
/// exhaustive integer walk for sorted-key range enumeration. Small
/// boxes (a tight radius over a few cells) are cheapest as direct hash
/// lookups; large sparse boxes — e.g. `d = 3` with a radius spanning
/// many cell widths, where most integer keys hold no cell — pay
/// `O(volume)` hash probes for a handful of hits, and the sorted walk
/// visits only the occupied cells at `O(log cells)` per run instead.
/// Both walks emit the identical cell sequence (ascending key order),
/// so the cutoff is a pure wall-clock knob: labels, evaluation counts,
/// and [`CandidateStats`] are bit-identical on either side.
const RING_WALK_CELLS: u64 = 96;

/// An ε-aligned grid over `n` points in `R^d`, stored in canonical
/// form: cells sorted by integer key (lexicographic), members sorted
/// ascending, CSR offsets, and a per-cell member bounding box. A hash
/// table over the keys serves O(1) lookups during probes; it is never
/// iterated, so it cannot influence any ordering. See the crate docs
/// for the determinism and soundness arguments.
#[derive(Debug, Clone)]
pub struct GridIndex {
    dim: usize,
    cell: f64,
    /// Row-major coordinates of all indexed points (`n × dim`), owned
    /// so probes and `extend` need no external coordinate source.
    coords: Vec<f64>,
    /// Sorted cell keys, flattened (`num_cells × dim`).
    keys: Vec<i64>,
    /// CSR offsets into `members` (`num_cells + 1`).
    offsets: Vec<u32>,
    /// Point ids bucketed per cell, ascending within each cell.
    members: Vec<u32>,
    /// Per-cell member bounding box, low corner (`num_cells × dim`).
    lo: Vec<f64>,
    /// Per-cell member bounding box, high corner (`num_cells × dim`).
    hi: Vec<f64>,
    /// Open-addressing table: slot → cell index (lookup only).
    table: Vec<u32>,
}

#[inline]
fn bin(x: f64, cell: f64) -> i64 {
    (x / cell).floor() as i64
}

#[inline]
fn hash_key(key: &[i64]) -> u64 {
    // FNV-1a over the key bytes: stable, dependency-free, and good
    // enough for integer grid keys behind linear probing.
    let mut h = 0xcbf29ce484222325u64;
    for &k in key {
        for b in k.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl GridIndex {
    /// Builds the index over `coords` (row-major, `len` must be a
    /// multiple of `dim`) at the given cell side. Pure coordinate
    /// arithmetic — **zero distance evaluations** (no metric is
    /// reachable from this API).
    ///
    /// Panics on a non-positive/non-finite cell side, `dim == 0`,
    /// `dim > MAX_BIN_DIM`, misaligned `coords`, or non-finite
    /// coordinates.
    pub fn build(dim: usize, cell: f64, coords: Vec<f64>) -> Self {
        assert!(
            (1..=MAX_BIN_DIM).contains(&dim),
            "grid dimension must be in 1..={MAX_BIN_DIM}, got {dim}"
        );
        assert!(
            cell.is_finite() && cell > 0.0,
            "grid cell side must be positive and finite, got {cell}"
        );
        assert_eq!(coords.len() % dim, 0, "coords not a multiple of dim");
        assert!(
            coords.iter().all(|v| v.is_finite()),
            "non-finite coordinate"
        );
        let n = coords.len() / dim;
        assert!(n <= u32::MAX as usize, "too many points for u32 ids");

        // Bin every point, then sort ids by (cell key, id): the sorted
        // run structure *is* the canonical cell order.
        let mut keybuf = vec![0i64; coords.len()];
        for i in 0..n {
            for a in 0..dim {
                keybuf[i * dim + a] = bin(coords[i * dim + a], cell);
            }
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&i, &j| {
            let ki = &keybuf[i as usize * dim..(i as usize + 1) * dim];
            let kj = &keybuf[j as usize * dim..(j as usize + 1) * dim];
            ki.cmp(kj).then(i.cmp(&j))
        });

        let mut out = Self {
            dim,
            cell,
            coords,
            keys: Vec::new(),
            offsets: vec![0],
            members: Vec::with_capacity(n),
            lo: Vec::new(),
            hi: Vec::new(),
            table: Vec::new(),
        };
        for &id in &order {
            let key = &keybuf[id as usize * dim..(id as usize + 1) * dim];
            if out.keys.is_empty() || &out.keys[out.keys.len() - dim..] != key {
                // `keys` is empty or the run changed: open a new cell.
                if !out.members.is_empty() {
                    out.offsets.push(out.members.len() as u32);
                }
                out.keys.extend_from_slice(key);
            }
            out.push_member(id);
        }
        if !out.members.is_empty() {
            out.offsets.push(out.members.len() as u32);
        }
        out.rebuild_table();
        out
    }

    /// Appends one member to the currently-open (last) cell, growing
    /// its bounding box by an order-free min/max fold.
    fn push_member(&mut self, id: u32) {
        let c = self.keys.len() / self.dim - 1;
        if self.lo.len() < (c + 1) * self.dim {
            let row = &self.coords[id as usize * self.dim..(id as usize + 1) * self.dim];
            self.lo.extend_from_slice(row);
            self.hi.extend_from_slice(row);
        } else {
            for a in 0..self.dim {
                let v = self.coords[id as usize * self.dim + a];
                let lo = &mut self.lo[c * self.dim + a];
                *lo = lo.min(v);
                let hi = &mut self.hi[c * self.dim + a];
                *hi = hi.max(v);
            }
        }
        self.members.push(id);
    }

    fn rebuild_table(&mut self) {
        let cells = self.num_cells();
        let cap = (cells * 2).next_power_of_two().max(8);
        self.table = vec![EMPTY; cap];
        let mask = cap as u64 - 1;
        for c in 0..cells {
            let key = &self.keys[c * self.dim..(c + 1) * self.dim];
            let mut slot = (hash_key(key) & mask) as usize;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & mask as usize;
            }
            self.table[slot] = c as u32;
        }
    }

    /// Grows the index by the points whose row-major coordinates are
    /// `new_coords`, assigning them ids `len()..`. The result is
    /// **bit-identical** to [`GridIndex::build`] over the concatenated
    /// coordinates: appended ids exceed every existing member (buckets
    /// stay ascending), merged keys stay sorted, and bounding boxes are
    /// order-free min/max folds. Cost is `O(m log m + cells)` for an
    /// `m`-point batch, not a full `O(n log n)` rebuild.
    pub fn extend(&self, new_coords: &[f64]) -> Self {
        assert_eq!(
            new_coords.len() % self.dim,
            0,
            "coords not a multiple of dim"
        );
        assert!(
            new_coords.iter().all(|v| v.is_finite()),
            "non-finite coordinate"
        );
        let dim = self.dim;
        let base = self.len() as u32;
        let m = new_coords.len() / dim;
        let mut keybuf = vec![0i64; new_coords.len()];
        for i in 0..m {
            for a in 0..dim {
                keybuf[i * dim + a] = bin(new_coords[i * dim + a], self.cell);
            }
        }
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_unstable_by(|&i, &j| {
            let ki = &keybuf[i as usize * dim..(i as usize + 1) * dim];
            let kj = &keybuf[j as usize * dim..(j as usize + 1) * dim];
            ki.cmp(kj).then(i.cmp(&j))
        });

        let mut coords = self.coords.clone();
        coords.extend_from_slice(new_coords);
        let mut out = Self {
            dim,
            cell: self.cell,
            coords,
            keys: Vec::new(),
            offsets: vec![0],
            members: Vec::with_capacity(self.members.len() + m),
            lo: Vec::new(),
            hi: Vec::new(),
            table: Vec::new(),
        };

        // Merge the two key-sorted streams: existing cells (members
        // already ascending and < base) and the fresh runs (ids offset
        // by `base`, so they sort after any existing member of the same
        // cell).
        let old_cells = self.num_cells();
        let (mut oc, mut ni) = (0usize, 0usize);
        while oc < old_cells || ni < m {
            let old_key = (oc < old_cells).then(|| &self.keys[oc * dim..(oc + 1) * dim]);
            let new_key = (ni < m).then(|| {
                let id = order[ni] as usize;
                &keybuf[id * dim..(id + 1) * dim]
            });
            let take_old = match (old_key, new_key) {
                (Some(ok), Some(nk)) => ok <= nk,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_old {
                let key = old_key.expect("old cell present");
                let emit_new = new_key == Some(key);
                out.open_cell(key);
                for &id in self.cell_members(oc) {
                    out.push_member(id);
                }
                if emit_new {
                    // Same cell also gained fresh members: append them
                    // (ids are all ≥ base > every existing member).
                    while ni < m {
                        let id = order[ni] as usize;
                        if &keybuf[id * dim..(id + 1) * dim] != key {
                            break;
                        }
                        out.push_member(base + order[ni]);
                        ni += 1;
                    }
                }
                oc += 1;
            } else {
                let key = keybuf[order[ni] as usize * dim..(order[ni] as usize + 1) * dim].to_vec();
                out.open_cell(&key);
                while ni < m {
                    let id = order[ni] as usize;
                    if keybuf[id * dim..(id + 1) * dim] != key[..] {
                        break;
                    }
                    out.push_member(base + order[ni]);
                    ni += 1;
                }
            }
            out.offsets.push(out.members.len() as u32);
        }
        out.rebuild_table();
        out
    }

    fn open_cell(&mut self, key: &[i64]) {
        self.keys.extend_from_slice(key);
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The cell side the index was built at.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Row-major coordinates of point `i` (as indexed).
    pub fn point_coords(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The member ids of cell `c` (ascending).
    pub fn cell_members(&self, c: usize) -> &[u32] {
        &self.members[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.coords.len() * std::mem::size_of::<f64>()
            + self.keys.len() * std::mem::size_of::<i64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.members.len() * std::mem::size_of::<u32>()
            + (self.lo.len() + self.hi.len()) * std::mem::size_of::<f64>()
            + self.table.len() * std::mem::size_of::<u32>()
    }

    fn find_cell(&self, key: &[i64]) -> Option<usize> {
        let mask = self.table.len() as u64 - 1;
        let mut slot = (hash_key(key) & mask) as usize;
        loop {
            let c = self.table[slot];
            if c == EMPTY {
                return None;
            }
            let c = c as usize;
            if &self.keys[c * self.dim..(c + 1) * self.dim] == key {
                return Some(c);
            }
            slot = (slot + 1) & mask as usize;
        }
    }

    /// Visits every non-empty cell in the probe ring of `B(q, r)`, in
    /// lexicographic key order. The ring is one cell wider per side
    /// than the nominal `⌊(q_a ± r)/cell⌋` range so a one-ulp floor
    /// slip can never exclude a true neighbor's cell.
    fn visit_ring(&self, q: &[f64], r: f64, mut f: impl FnMut(usize)) {
        debug_assert_eq!(q.len(), self.dim);
        if self.is_empty() {
            return;
        }
        let dim = self.dim;
        let mut lo = [0i64; MAX_BIN_DIM];
        let mut hi = [0i64; MAX_BIN_DIM];
        let mut cur = [0i64; MAX_BIN_DIM];
        let mut volume = 1u64;
        for a in 0..dim {
            lo[a] = bin(q[a] - r, self.cell) - 1;
            hi[a] = bin(q[a] + r, self.cell) + 1;
            cur[a] = lo[a];
            volume = volume.saturating_mul(hi[a].saturating_sub(lo[a]).max(0) as u64 + 1);
        }
        if volume > RING_WALK_CELLS {
            // Large sparse box: walk only the occupied cells via the
            // sorted key array. Same cells, same ascending-key order as
            // the exhaustive walk below — see `visit_box_sorted`.
            self.visit_box_sorted(&lo[..dim], &hi[..dim], 0, 0, self.num_cells(), &mut f);
            return;
        }
        'outer: loop {
            if let Some(c) = self.find_cell(&cur[..dim]) {
                f(c);
            }
            let mut a = dim - 1;
            loop {
                cur[a] += 1;
                if cur[a] <= hi[a] {
                    continue 'outer;
                }
                cur[a] = lo[a];
                if a == 0 {
                    break 'outer;
                }
                a -= 1;
            }
        }
    }

    /// First cell index in `[s, e)` whose key coordinate at `depth`
    /// reaches `v`. Valid whenever all cells in the range share their
    /// key prefix below `depth`: lexicographic order then sorts the
    /// range by the `depth` coordinate.
    fn lower_bound(&self, s: usize, e: usize, depth: usize, v: i64) -> usize {
        let (mut a, mut b) = (s, e);
        while a < b {
            let m = a + (b - a) / 2;
            if self.keys[m * self.dim + depth] < v {
                a = m + 1;
            } else {
                b = m;
            }
        }
        a
    }

    /// Visits, in ascending cell-index (= lexicographic key) order,
    /// every cell in `[s, e)` whose key lies inside the integer box
    /// `lo..=hi` on dimensions `depth..`. Callers guarantee the range's
    /// cells agree on dimensions `< depth` and that the shared prefix
    /// is inside the box, so cell order within the range is sorted by
    /// the `depth` coordinate and two binary searches bracket each
    /// coordinate run. The full-index call (`depth = 0`, the whole
    /// range) therefore emits exactly the occupied cells of the box in
    /// the order the exhaustive integer walk in [`GridIndex::visit_ring`]
    /// finds them — the two walks are interchangeable bit-for-bit.
    fn visit_box_sorted<F: FnMut(usize)>(
        &self,
        lo: &[i64],
        hi: &[i64],
        depth: usize,
        s: usize,
        e: usize,
        f: &mut F,
    ) {
        if depth == lo.len() {
            for c in s..e {
                f(c);
            }
            return;
        }
        let mut c = self.lower_bound(s, e, depth, lo[depth]);
        while c < e {
            let v = self.keys[c * self.dim + depth];
            if v > hi[depth] {
                break;
            }
            // `[c, run)` is the run of cells sharing coordinate `v` at
            // this depth (and the prefix above it).
            let run = self.lower_bound(c, e, depth, v + 1);
            self.visit_box_sorted(lo, hi, depth + 1, c, run, f);
            c = run;
        }
    }

    /// Distance bounds from `q` to cell `c`'s member bounding box:
    /// `(lb, ub, m)` where `lb ≤ dis(q, x) ≤ ub` for every member `x`
    /// and `m` bounds the coordinate magnitudes involved (for the
    /// guard band).
    fn cell_bounds(&self, c: usize, q: &[f64]) -> (f64, f64, f64) {
        let (mut lb2, mut ub2, mut m) = (0.0f64, 0.0f64, 0.0f64);
        let lo_row = &self.lo[c * self.dim..(c + 1) * self.dim];
        let hi_row = &self.hi[c * self.dim..(c + 1) * self.dim];
        for ((&lo, &hi), &qa) in lo_row.iter().zip(hi_row).zip(q) {
            m = m.max(qa.abs()).max(lo.abs()).max(hi.abs());
            let gap = (lo - qa).max(qa - hi).max(0.0);
            lb2 += gap * gap;
            let far = (qa - lo).abs().max((hi - qa).abs());
            ub2 += far * far;
        }
        (lb2.sqrt(), ub2.sqrt(), m)
    }

    /// Counts members of `B(q, r)` up to `cap`, replacing a generic
    /// capped neighbor scan. Wholesale-acceptable cells (box entirely
    /// inside the guarded radius) are counted without consulting
    /// `eval`; members of boundary cells are handed to `eval` — the
    /// caller's *metric* predicate `dis(q, x) ≤ r` — in deterministic
    /// order (cells by key, members ascending) until the cap is
    /// reached. `scratch` is reused boundary-cell storage.
    ///
    /// If the query point itself is indexed it is counted like any
    /// other member, matching the generic scan (which counts `p ∈
    /// B(p, r)`).
    pub fn count_within_capped(
        &self,
        q: &[f64],
        r: f64,
        cap: usize,
        scratch: &mut Vec<u32>,
        stats: &mut CandidateStats,
        mut eval: impl FnMut(u32) -> bool,
    ) -> usize {
        scratch.clear();
        let mut count = 0usize;
        self.visit_ring(q, r, |c| {
            stats.cells_probed += 1;
            let (lb, ub, m) = self.cell_bounds(c, q);
            let slack = GUARD * (r + m);
            let size = self.cell_members(c).len() as u64;
            if lb > r + slack {
                stats.candidates_rejected += size;
            } else if ub <= r - slack {
                stats.candidates_emitted += size;
                count += size as usize;
            } else {
                scratch.push(c as u32);
            }
        });
        if count >= cap {
            return cap;
        }
        for &c in scratch.iter() {
            for &id in self.cell_members(c as usize) {
                stats.candidates_emitted += 1;
                if eval(id) {
                    count += 1;
                    if count >= cap {
                        return cap;
                    }
                }
            }
        }
        count
    }

    /// Visits the members of every ring cell of `B(q, r)` that survives
    /// the cell-level rejection bound, in deterministic order, as
    /// `f(members, cell_lb, whole_within)` — for nearest-within scans
    /// that keep their own shrinking bound, and for range scans that
    /// can accept whole cells. `whole_within` is `Some(cell_ub)` when
    /// the cell's member box lies entirely inside the guarded radius
    /// (the same test [`GridIndex::count_within_capped`] counts for
    /// free): `cell_lb ≤ dis(q, x) ≤ cell_ub ≤ r` holds for every
    /// member `x`, so the caller may accept them without a distance
    /// evaluation. Rejected cells are tallied into `stats`; the caller
    /// accounts for the candidates it actually examines.
    pub fn for_each_candidate_cell(
        &self,
        q: &[f64],
        r: f64,
        stats: &mut CandidateStats,
        mut f: impl FnMut(&[u32], f64, Option<f64>),
    ) {
        self.visit_ring(q, r, |c| {
            stats.cells_probed += 1;
            let (lb, ub, m) = self.cell_bounds(c, q);
            let slack = GUARD * (r + m);
            let members = self.cell_members(c);
            if lb > r + slack {
                stats.candidates_rejected += members.len() as u64;
            } else {
                let whole_within = (ub <= r - slack).then_some(ub);
                f(members, lb, whole_within);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn random_coords(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim)
            .map(|_| rng.random::<f64>() * 20.0 - 10.0)
            .collect()
    }

    fn assert_bit_identical(a: &GridIndex, b: &GridIndex) {
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.members, b.members);
        assert!(a
            .lo
            .iter()
            .zip(&b.lo)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(a
            .hi
            .iter()
            .zip(&b.hi)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(a
            .coords
            .iter()
            .zip(&b.coords)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn canonical_form_holds() {
        for dim in [1usize, 2, 3] {
            let coords = random_coords(500, dim, 7 + dim as u64);
            let g = GridIndex::build(dim, 0.9, coords);
            assert_eq!(g.len(), 500);
            // Keys strictly ascending (lexicographic), members ascending,
            // every point in exactly one cell.
            let mut seen = vec![false; 500];
            for c in 0..g.num_cells() {
                if c > 0 {
                    let prev = &g.keys[(c - 1) * dim..c * dim];
                    let cur = &g.keys[c * dim..(c + 1) * dim];
                    assert!(prev < cur, "cells out of order at {c}");
                }
                let mem = g.cell_members(c);
                assert!(!mem.is_empty());
                assert!(mem.windows(2).all(|w| w[0] < w[1]));
                for &id in mem {
                    assert!(!seen[id as usize]);
                    seen[id as usize] = true;
                    // Member inside its cell's bounding box.
                    for a in 0..dim {
                        let v = g.point_coords(id as usize)[a];
                        assert!(g.lo[c * dim + a] <= v && v <= g.hi[c * dim + a]);
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn extend_is_bit_identical_to_fresh_build() {
        for dim in [1usize, 2, 3] {
            let all = random_coords(800, dim, 99);
            let fresh = GridIndex::build(dim, 0.7, all.clone());
            // Grow in several uneven batches, including an empty one.
            for splits in [vec![800], vec![500, 300], vec![100, 0, 350, 350]] {
                let mut cut = 0usize;
                let mut grown: Option<GridIndex> = None;
                for s in splits {
                    let chunk = &all[cut * dim..(cut + s) * dim];
                    grown = Some(match grown {
                        None => GridIndex::build(dim, 0.7, chunk.to_vec()),
                        Some(g) => g.extend(chunk),
                    });
                    cut += s;
                }
                assert_bit_identical(&fresh, &grown.unwrap());
            }
        }
    }

    #[test]
    fn count_matches_brute_force() {
        for dim in [1usize, 2, 3] {
            let coords = random_coords(400, dim, 3);
            let cell = 1.5 / (dim as f64).sqrt();
            let g = GridIndex::build(dim, cell, coords.clone());
            let mut scratch = Vec::new();
            for i in 0..400 {
                let q = &coords[i * dim..(i + 1) * dim];
                for r in [0.3, 1.5, 4.0] {
                    let want = (0..400)
                        .filter(|&j| euclid(q, &coords[j * dim..(j + 1) * dim]) <= r)
                        .count();
                    let mut stats = CandidateStats::default();
                    let got =
                        g.count_within_capped(q, r, usize::MAX, &mut scratch, &mut stats, |id| {
                            euclid(q, g.point_coords(id as usize)) <= r
                        });
                    assert_eq!(got, want, "dim={dim} i={i} r={r}");
                    // Capped variant saturates exactly.
                    if want >= 3 {
                        let got = g.count_within_capped(q, r, 3, &mut scratch, &mut stats, |id| {
                            euclid(q, g.point_coords(id as usize)) <= r
                        });
                        assert_eq!(got, 3);
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_cells_cover_the_ball() {
        let dim = 2;
        let coords = random_coords(300, dim, 11);
        let g = GridIndex::build(dim, 0.5, coords.clone());
        let mut stats = CandidateStats::default();
        for i in 0..300 {
            let q = &coords[i * dim..(i + 1) * dim];
            let r = 0.8;
            let mut emitted = vec![false; 300];
            g.for_each_candidate_cell(q, r, &mut stats, |members, lb, whole_within| {
                for &id in members {
                    emitted[id as usize] = true;
                    let d = euclid(q, &coords[id as usize * dim..(id as usize + 1) * dim]);
                    assert!(lb <= d + 1e-12, "cell lb {lb} above member distance {d}");
                    if let Some(ub) = whole_within {
                        assert!(
                            d <= ub && ub <= r,
                            "whole-within bound unsound: {d} / {ub} / {r}"
                        );
                    }
                }
            });
            for j in 0..300 {
                if euclid(q, &coords[j * dim..(j + 1) * dim]) <= r {
                    assert!(emitted[j], "ball member {j} not emitted for query {i}");
                }
            }
        }
        assert!(stats.cells_probed > 0);
        assert!(stats.candidates_rejected > 0, "rejection bound never fired");
    }

    #[test]
    fn whole_cell_accepts_fire_without_eval() {
        // A tight cluster well inside one cell: counting at a generous
        // radius must not consult the predicate for the accepted cells.
        let dim = 2;
        let mut coords = Vec::new();
        for i in 0..50 {
            coords.push(0.4 + (i as f64) * 1e-4);
            coords.push(0.4 - (i as f64) * 1e-4);
        }
        let g = GridIndex::build(dim, 1.0, coords.clone());
        let mut stats = CandidateStats::default();
        let mut scratch = Vec::new();
        let mut evals = 0usize;
        let got = g.count_within_capped(
            &[0.4, 0.4],
            0.5,
            usize::MAX,
            &mut scratch,
            &mut stats,
            |_| {
                evals += 1;
                true
            },
        );
        assert_eq!(got, 50);
        assert_eq!(evals, 0, "dense interior should be evaluation-free");
        assert_eq!(stats.candidates_emitted, 50);
    }

    #[test]
    fn empty_grid_probes_cleanly() {
        let g = GridIndex::build(2, 1.0, Vec::new());
        assert!(g.is_empty());
        assert_eq!(g.num_cells(), 0);
        let mut stats = CandidateStats::default();
        let mut scratch = Vec::new();
        let got = g.count_within_capped(&[0.0, 0.0], 1.0, 5, &mut scratch, &mut stats, |_| true);
        assert_eq!(got, 0);
        g.for_each_candidate_cell(&[0.0, 0.0], 1.0, &mut stats, |_, _, _| {
            panic!("no cells to visit")
        });
        assert_eq!(stats, CandidateStats::default());
    }

    #[test]
    fn negative_and_boundary_coordinates_bin_consistently() {
        // Points exactly on cell boundaries and in negative space:
        // count must still match brute force (the ±1 ring widening
        // absorbs any floor behavior at the seams).
        let dim = 2;
        let mut coords = Vec::new();
        for i in -5i32..5 {
            for j in -5i32..5 {
                coords.push(f64::from(i) * 0.5);
                coords.push(f64::from(j) * 0.5);
            }
        }
        let g = GridIndex::build(dim, 0.5, coords.clone());
        let n = coords.len() / dim;
        let mut scratch = Vec::new();
        for i in 0..n {
            let q = coords[i * dim..(i + 1) * dim].to_vec();
            let r = 1.0;
            let want = (0..n)
                .filter(|&j| euclid(&q, &coords[j * dim..(j + 1) * dim]) <= r)
                .count();
            let mut stats = CandidateStats::default();
            let got = g.count_within_capped(&q, r, usize::MAX, &mut scratch, &mut stats, |id| {
                euclid(&q, g.point_coords(id as usize)) <= r
            });
            assert_eq!(got, want, "i={i}");
        }
    }

    #[test]
    fn sorted_box_walk_matches_exhaustive_walk() {
        // The two ring-walk strategies must emit the identical cell
        // sequence for any box — the cutoff in `visit_ring` is a pure
        // wall-clock knob. Compare them directly on boxes spanning
        // both sides of RING_WALK_CELLS, including empty and
        // off-the-grid boxes.
        for dim in [1usize, 2, 3] {
            let coords = random_coords(600, dim, 42 + dim as u64);
            let g = GridIndex::build(dim, 0.6, coords);
            let boxes: Vec<(Vec<i64>, Vec<i64>)> = vec![
                (vec![-2; dim], vec![2; dim]),   // small: exhaustive side
                (vec![-20; dim], vec![20; dim]), // whole grid: sorted side
                (vec![-9; dim], vec![3; dim]),   // asymmetric
                (vec![50; dim], vec![80; dim]),  // off the grid entirely
                (vec![0; dim], vec![0; dim]),    // single cell
            ];
            for (lo, hi) in boxes {
                let mut exhaustive = Vec::new();
                let mut cur = lo.clone();
                'outer: loop {
                    if let Some(c) = g.find_cell(&cur) {
                        exhaustive.push(c);
                    }
                    let mut a = dim - 1;
                    loop {
                        cur[a] += 1;
                        if cur[a] <= hi[a] {
                            continue 'outer;
                        }
                        cur[a] = lo[a];
                        if a == 0 {
                            break 'outer;
                        }
                        a -= 1;
                    }
                }
                let mut sorted = Vec::new();
                g.visit_box_sorted(&lo, &hi, 0, 0, g.num_cells(), &mut |c| sorted.push(c));
                assert_eq!(sorted, exhaustive, "dim={dim} lo={lo:?} hi={hi:?}");
            }
        }
    }

    #[test]
    fn large_ring_probes_stay_correct() {
        // A radius spanning many cell widths pushes `visit_ring` onto
        // the sorted walk; counts must still match brute force.
        let dim = 3;
        let coords = random_coords(500, dim, 5);
        let g = GridIndex::build(dim, 0.25, coords.clone());
        let mut scratch = Vec::new();
        for i in (0..500).step_by(37) {
            let q = coords[i * dim..(i + 1) * dim].to_vec();
            for r in [2.0, 6.0] {
                let want = (0..500)
                    .filter(|&j| euclid(&q, &coords[j * dim..(j + 1) * dim]) <= r)
                    .count();
                let mut stats = CandidateStats::default();
                let got =
                    g.count_within_capped(&q, r, usize::MAX, &mut scratch, &mut stats, |id| {
                        euclid(&q, g.point_coords(id as usize)) <= r
                    });
                assert_eq!(got, want, "i={i} r={r}");
            }
        }
    }

    #[test]
    fn heap_bytes_reported() {
        let g = GridIndex::build(2, 1.0, random_coords(100, 2, 1));
        assert!(g.heap_bytes() > 100 * 2 * 8);
    }

    #[test]
    #[should_panic]
    fn zero_cell_panics() {
        let _ = GridIndex::build(2, 0.0, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn misaligned_coords_panic() {
        let _ = GridIndex::build(2, 1.0, vec![0.0, 0.0, 1.0]);
    }
}
