//! ε-aligned grid index: cell-bucketed candidate generation for
//! low-dimensional Euclidean workloads.
//!
//! The paper's net-anchored pruning cuts distance evaluations by
//! constants, but for coordinate data at small dimension the per-point
//! ball scans remain the bottleneck. Following de Berg–Gunawan–
//! Roeloffzen ("Faster DBSCAN and HDBSCAN in Low-Dimensional Euclidean
//! Spaces"), this crate buckets points into an axis-aligned grid and
//! generates neighbor *candidates* from the few cells a query ball can
//! touch — the actual distance predicate always stays with the caller's
//! metric, so the index changes which pairs are *examined*, never what
//! any examined pair *evaluates to*.
//!
//! # Cell-size derivation
//!
//! [`GridIndex`] bins point `x` into the cell with integer key
//! `k_a = ⌊x_a / cell⌋` per axis. The engine picks `cell = ε/√d`: a
//! cell is then a `d`-cube of side `ε/√d`, whose diameter is
//! `√d · (ε/√d) = ε`. Two consequences the candidate generator uses:
//!
//! * any two points in one cell are within `ε` of each other, so whole
//!   cells can be **accepted** against a ball query without evaluating
//!   a single member (the dense-interior shortcut that makes Step-1
//!   core counting nearly evaluation-free);
//! * a ball `B(q, r)` only intersects cells whose key lies in the
//!   per-axis range `⌊(q_a − r)/cell⌋ .. ⌊(q_a + r)/cell⌋` — at
//!   `r = ε` that is `O((2√d + 3)^d)` cells, a constant for fixed `d`
//!   (the "≤ 3^d neighboring cells" picture at cell side `ε`). Probe
//!   rings are enumerated one extra cell wider on each side so a
//!   one-ulp slip in the floating-point `⌊·/cell⌋` can never drop a
//!   true neighbor.
//!
//! Construction performs **zero distance evaluations**: binning,
//! sorting, and the per-cell member bounding boxes are pure coordinate
//! arithmetic — no metric is ever consulted (none is even reachable
//! from this crate's API).
//!
//! # Determinism of the cell ordering
//!
//! Cells are stored sorted by their integer key (lexicographic across
//! axes) with members ascending by point id, in one CSR-style
//! `offsets`/`members` pair. Both orders are total and depend only on
//! the point *set*: neither thread count (construction is sequential),
//! nor insertion order (keys are sorted, members are sorted), nor the
//! hash table (used for lookups only, never iterated) can influence
//! them. [`GridIndex::extend`] preserves this canonical form — appended
//! points carry larger ids than every existing member, so grown buckets
//! stay ascending, and per-cell bounding boxes are min/max folds, which
//! are order-free — making a grown index **bit-identical** to a fresh
//! build over the concatenated coordinates (asserted by this crate's
//! tests).
//!
//! # Soundness guard for cell verdicts
//!
//! A probed cell is rejected (or wholesale-accepted) by comparing the
//! query's distance to the cell's member bounding box against the
//! radius. Those box distances are computed in floating point, so a
//! verdict only fires *clear of the threshold*: reject needs
//! `lb > r + slack`, accept needs `ub ≤ r − slack`, with
//! `slack = 10⁻⁹ · (r + m)` where `m` bounds the coordinate magnitudes
//! involved. Both box distances are short sums of exact differences —
//! relative error well under `10⁻¹²` — so the guard band exceeds any
//! possible rounding by orders of magnitude; everything inside the band
//! falls through to the caller's metric, which keeps the final
//! predicate — and therefore the labels — exactly the metric's own.
//! This is the same exposure class as the workspace's documented
//! net-anchored-pruning caveat.
//!
//! # Fallback gating (who gets a grid)
//!
//! The index requires a *coordinate view*: a metric that can expose its
//! points as rows in `R^d` whose Euclidean distance is exactly the
//! metric's distance. In the workspace that is
//! `mdbscan_metric::VectorBlock<f32|f64>` (via the `GridCompatible`
//! trait's `grid_coords`); every other metric reports no view and the
//! engine silently keeps the generic path. The engine additionally
//! gates on `dim ≤ GRID_MAX_DIM` — probe rings grow as `(2√d + 3)^d`,
//! so past dimension 3 the generic net-anchored path wins.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod index;
mod stats;

pub use index::{GridIndex, GRID_MAX_DIM, MAX_BIN_DIM};
pub use stats::CandidateStats;
