//! Phase-level tracing: the [`Recorder`] seam the engine reports
//! through, with a zero-cost no-op default and a registry-backed
//! implementation.
//!
//! Recorders are **observers only**: the engine hands them durations
//! and counts it already computed, after the fact. A recorder cannot
//! influence any distance evaluation, ordering, or label — see the
//! crate-level read-only contract.

use std::sync::Arc;
use std::time::Duration;

use crate::metrics::{Counter, Histogram, Registry};

/// A pipeline phase whose wall-clock duration the engine reports.
///
/// The first five map one-to-one onto the source paper's pipeline:
/// Algorithm-1 net construction, Step-1 core counting, center
/// adjacency, Step-2 merging, and Step-3 / Algorithm-2 labeling
/// (streaming maps its pass 1 / pass 2 / offline merge / pass 3 onto
/// `NetBuild` / `Step1` / `Step2` / `Step3`). The rest cover the
/// engine's operational phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Algorithm-1 radius-guided net construction (or streaming pass 1).
    NetBuild,
    /// Step-1 core counting (approx: summary build; streaming pass 2).
    Step1,
    /// Center adjacency graph construction.
    Adjacency,
    /// Step-2 merging of adjacent dense centers (streaming offline merge).
    Step2,
    /// Step-3 / Algorithm-2 labeling (streaming pass 3).
    Step3,
    /// Candidate-index resolution (grid / random-projection probe setup).
    CandidateProbe,
    /// One `ingest` batch: net extension + delta append + publication.
    IngestBatch,
    /// Artifact serialization (`save` / `save_checkpoint`).
    ArtifactSave,
    /// Artifact deserialization (`load` / `load_latest`).
    ArtifactLoad,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 9] = [
        Phase::NetBuild,
        Phase::Step1,
        Phase::Adjacency,
        Phase::Step2,
        Phase::Step3,
        Phase::CandidateProbe,
        Phase::IngestBatch,
        Phase::ArtifactSave,
        Phase::ArtifactLoad,
    ];

    /// Stable snake_case name used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::NetBuild => "net_build",
            Phase::Step1 => "step1",
            Phase::Adjacency => "adjacency",
            Phase::Step2 => "step2",
            Phase::Step3 => "step3",
            Phase::CandidateProbe => "candidate_probe",
            Phase::IngestBatch => "ingest_batch",
            Phase::ArtifactSave => "artifact_save",
            Phase::ArtifactLoad => "artifact_load",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::NetBuild => 0,
            Phase::Step1 => 1,
            Phase::Adjacency => 2,
            Phase::Step2 => 3,
            Phase::Step3 => 4,
            Phase::CandidateProbe => 5,
            Phase::IngestBatch => 6,
            Phase::ArtifactSave => 7,
            Phase::ArtifactLoad => 8,
        }
    }
}

/// A discrete engine event with an attached magnitude.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// An engine cache lookup (fragments, adjacency, grid, RP) hit.
    CacheHit,
    /// An engine cache lookup missed and the artifact was recomputed.
    CacheMiss,
    /// Candidate pairs emitted by a candidate index this run.
    CandidatesEmitted,
    /// Candidate pairs rejected after full evaluation this run.
    CandidatesRejected,
    /// Points accepted by one `ingest` batch.
    PointsIngested,
}

impl Event {
    /// Every event kind.
    pub const ALL: [Event; 5] = [
        Event::CacheHit,
        Event::CacheMiss,
        Event::CandidatesEmitted,
        Event::CandidatesRejected,
        Event::PointsIngested,
    ];

    /// Stable snake_case name used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            Event::CacheHit => "cache_hit",
            Event::CacheMiss => "cache_miss",
            Event::CandidatesEmitted => "candidates_emitted",
            Event::CandidatesRejected => "candidates_rejected",
            Event::PointsIngested => "points_ingested",
        }
    }

    fn index(self) -> usize {
        match self {
            Event::CacheHit => 0,
            Event::CacheMiss => 1,
            Event::CandidatesEmitted => 2,
            Event::CandidatesRejected => 3,
            Event::PointsIngested => 4,
        }
    }
}

/// The tracing seam. Implementations must be cheap and must not
/// panic; the engine calls them inline from query and ingest paths.
pub trait Recorder: Send + Sync {
    /// Reports that `phase` took `elapsed` wall-clock time.
    fn phase(&self, phase: Phase, elapsed: Duration);
    /// Reports `n` occurrences of `event`.
    fn event(&self, event: Event, n: u64);
}

/// A recorder that does nothing. Engines without a recorder skip the
/// calls entirely; this type exists so code paths that demand *some*
/// recorder (e.g. equivalence tests) have a zero-cost one.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn phase(&self, _phase: Phase, _elapsed: Duration) {}
    #[inline]
    fn event(&self, _event: Event, _n: u64) {}
}

/// A recorder that folds phases and events into a [`Registry`]:
/// each phase into a `mdbscan_phase_<name>_micros` histogram, each
/// event into a `mdbscan_event_<name>_total` counter. All handles are
/// resolved at construction, so recording is lock-free.
pub struct MetricsRecorder {
    phases: [Histogram; Phase::ALL.len()],
    events: [Counter; Event::ALL.len()],
}

impl MetricsRecorder {
    /// Builds a recorder over `registry`, registering every phase
    /// histogram and event counter up front.
    pub fn new(registry: &Registry) -> Self {
        MetricsRecorder {
            phases: std::array::from_fn(|i| {
                registry.histogram(&format!("mdbscan_phase_{}_micros", Phase::ALL[i].name()))
            }),
            events: std::array::from_fn(|i| {
                registry.counter(&format!("mdbscan_event_{}_total", Event::ALL[i].name()))
            }),
        }
    }

    /// Convenience: a ready-to-share `Arc<dyn Recorder>` over `registry`.
    pub fn shared(registry: &Registry) -> Arc<dyn Recorder> {
        Arc::new(MetricsRecorder::new(registry))
    }
}

impl Recorder for MetricsRecorder {
    #[inline]
    fn phase(&self, phase: Phase, elapsed: Duration) {
        self.phases[phase.index()].record_duration(elapsed);
    }

    #[inline]
    fn event(&self, event: Event, n: u64) {
        self.events[event.index()].add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_recorder_lands_in_registry() {
        let reg = Registry::new();
        let rec = MetricsRecorder::new(&reg);
        rec.phase(Phase::Step1, Duration::from_micros(150));
        rec.phase(Phase::Step1, Duration::from_micros(90));
        rec.event(Event::CacheHit, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["mdbscan_phase_step1_micros"].count, 2);
        assert_eq!(snap.counters["mdbscan_event_cache_hit_total"], 3);
    }

    #[test]
    fn phase_indexes_match_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }
}
