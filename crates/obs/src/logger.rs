//! A structured, leveled, monotonic-timestamped `key=value` logger
//! for long-running binaries.
//!
//! One line per record: `t=<secs since logger start> level=<level>
//! event=<name> key=value ...`. Timestamps are monotonic (from
//! [`std::time::Instant`]), so lines order correctly even across
//! wall-clock adjustments. Values containing spaces, quotes, or `=`
//! are double-quoted with `"` and `\` escaped, so lines stay
//! machine-splittable on whitespace.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Log severity, lowest to highest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail, off by default.
    Debug,
    /// Normal operational events.
    Info,
    /// Degraded-but-running conditions.
    Warn,
    /// Failures.
    Error,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A leveled `key=value` line logger writing to stderr.
///
/// Shareable across threads; each line is written under a lock so
/// concurrent records never interleave.
pub struct Logger {
    start: Instant,
    min_level: Level,
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("min_level", &self.min_level)
            .finish()
    }
}

impl Logger {
    /// A stderr logger emitting `min_level` and above.
    pub fn stderr(min_level: Level) -> Self {
        Logger {
            start: Instant::now(),
            min_level,
            out: Mutex::new(Box::new(std::io::stderr())),
        }
    }

    /// A logger writing to an arbitrary sink (used by tests).
    pub fn to_writer(min_level: Level, w: Box<dyn Write + Send>) -> Self {
        Logger {
            start: Instant::now(),
            min_level,
            out: Mutex::new(w),
        }
    }

    /// Emits one record. `fields` are appended as `key=value` pairs
    /// after the standard `t=`, `level=`, `event=` triple.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, String)]) {
        if level < self.min_level {
            return;
        }
        let t = self.start.elapsed();
        let mut line = format!(
            "t={}.{:03}s level={} event={}",
            t.as_secs(),
            t.subsec_millis(),
            level.name(),
            event
        );
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            line.push_str(&quote(v));
        }
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }

    /// [`Level::Debug`] record.
    pub fn debug(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Debug, event, fields);
    }

    /// [`Level::Info`] record.
    pub fn info(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Info, event, fields);
    }

    /// [`Level::Warn`] record.
    pub fn warn(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Warn, event, fields);
    }

    /// [`Level::Error`] record.
    pub fn error(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Error, event, fields);
    }
}

/// Quotes a value if it contains whitespace or `=`; escapes `"` / `\`.
fn quote(v: &str) -> String {
    if !v.is_empty() && !v.contains([' ', '\t', '\n', '=', '"', '\\']) {
        return v.to_string();
    }
    let mut q = String::with_capacity(v.len() + 2);
    q.push('"');
    for c in v.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    #[derive(Clone)]
    struct Sink(Arc<StdMutex<Vec<u8>>>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn formats_and_filters() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let log = Logger::to_writer(Level::Info, Box::new(Sink(buf.clone())));
        log.debug("hidden", &[]);
        log.info(
            "boot",
            &[
                ("points", "42".to_string()),
                ("msg", "warm start".to_string()),
            ],
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.contains("level=info"));
        assert!(line.contains("event=boot"));
        assert!(line.contains("points=42"));
        assert!(line.contains("msg=\"warm start\""));
        assert!(line.starts_with("t="));
    }
}
