//! A tiny hand-rolled `GET /metrics` TCP responder.
//!
//! Not a web server: it answers exactly one request per connection,
//! understands only `GET /metrics` (anything else gets a 404), and
//! exists so a replica can be scraped by Prometheus-compatible
//! tooling without pulling in an HTTP stack.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running `/metrics` responder; dropping it does *not*
/// stop the thread — call [`MetricsHttpServer::shutdown`].
#[derive(Debug)]
pub struct MetricsHttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsHttpServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Serves `GET /metrics` on `addr`, answering each request with the
/// plaintext returned by `exposition` (typically
/// `RegistrySnapshot::render` over a live registry). Returns once the
/// listener is bound; requests are handled on a background thread.
pub fn serve_metrics<A, F>(addr: A, exposition: F) -> std::io::Result<MetricsHttpServer>
where
    A: ToSocketAddrs,
    F: Fn() -> String + Send + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("mdbscan-metrics-http".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                // One request per connection; a stalled peer costs at
                // most one deadline.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                let _ = answer(stream, &exposition);
            }
        })?;
    Ok(MetricsHttpServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn answer<F: Fn() -> String>(mut stream: TcpStream, exposition: &F) -> std::io::Result<()> {
    // Read until the end of the request head (or the 4 KiB cap — a
    // scrape request has no meaningful body).
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 4096 {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/metrics/") {
        ("200 OK", exposition())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status.trim().to_string(), body)
    }

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let srv = serve_metrics("127.0.0.1:0", || "m_total 1\n".to_string()).unwrap();
        let addr = srv.local_addr();
        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "m_total 1\n");
        let (status, _) = get(addr, "/other");
        assert!(status.contains("404"), "{status}");
        srv.shutdown();
    }
}
