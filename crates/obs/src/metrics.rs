//! Atomic metrics registry: counters, gauges, and log2-bucket
//! histograms with lock-free recording and a snapshot/merge API.
//!
//! # Bucket layout
//!
//! Histograms use fixed boundaries at powers of two: bucket `b` holds
//! values whose bit length is `b`, i.e. bucket 0 holds the value `0`
//! and bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`. That gives
//! [`HISTOGRAM_BUCKETS`] (= 65) buckets covering all of `u64` with a
//! single `leading_zeros` instruction per `record` — no search, no
//! float math, no configuration to mismatch at merge time. Quantiles
//! are reconstructed by cumulative walk with linear interpolation
//! inside the target bucket, so they are exact to within one octave.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: one per possible `u64` bit length
/// (0 through 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` (`0` for bucket 0, `2^b - 1`
/// otherwise; bucket 64 is unbounded and rendered as `+Inf`).
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// A monotonically increasing counter handle. Cloning shares the
/// underlying cell; all operations are lock-free.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::SeqCst);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A last-write-wins gauge handle (e.g. queue depth, engine epoch).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::SeqCst);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log2-bucket histogram handle. `record` is lock-free: one bucket
/// increment plus sum/count increments, all relaxed-ordering atomics.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.0.count.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::SeqCst)
    }

    /// Point-in-time copy of the bucket counts, sum, and count.
    ///
    /// Concurrent recorders may land between bucket reads, so a live
    /// snapshot can transiently disagree by in-flight observations;
    /// [`HistogramSnapshot::is_consistent`] holds whenever the
    /// histogram is quiescent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Read `count` first: any record() completing mid-walk then
        // inflates buckets relative to count rather than the reverse.
        let count = self.0.count.load(Ordering::SeqCst);
        let sum = self.0.sum.load(Ordering::SeqCst);
        let buckets = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::SeqCst))
            .collect();
        HistogramSnapshot {
            buckets,
            sum,
            count,
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, [`HISTOGRAM_BUCKETS`] entries.
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True when the per-bucket counts add up to `count` — the
    /// self-consistency invariant of a quiescent histogram.
    pub fn is_consistent(&self) -> bool {
        self.buckets.len() == HISTOGRAM_BUCKETS && self.buckets.iter().sum::<u64>() == self.count
    }

    /// Adds another snapshot's observations into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimated quantile (`q` in `[0, 1]`) by cumulative bucket walk
    /// with linear interpolation inside the target bucket. Returns 0
    /// for an empty histogram. Exact to within the bucket's octave.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let lo = bucket_lower(b);
                let hi = bucket_upper(b);
                let into = rank - cum; // 1..=n
                let span = (hi - lo) as u128;
                return lo + (span * into as u128 / n as u128) as u64;
            }
            cum += n;
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean of the recorded values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics. Cloning shares the same underlying
/// registry, so one `Registry` can be threaded through the engine
/// recorder, the serving tier, and a `/metrics` responder.
///
/// Handle lookup ([`counter`](Registry::counter) etc.) takes a short
/// lock once per name; callers on hot paths should cache the returned
/// handle, which records lock-free thereafter.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Registry { .. }")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge registered under `name`, creating it on
    /// first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Point-in-time snapshot of every registered instrument, sorted
    /// by name. Individual reads are atomic; each instrument is read
    /// as a group (histograms bucket-coherently enough for rendering),
    /// and the registration table is locked for the duration, so no
    /// instrument registered mid-snapshot is half-present.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Immutable copy of a whole [`Registry`]: the unit of merging,
/// rendering, and wire transport (the serving tier's `Metrics` op
/// carries one of these).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Merges another snapshot into this one: counters and histograms
    /// accumulate; gauges take the other snapshot's value (last write
    /// wins, matching gauge semantics).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Renders the snapshot as Prometheus-style plaintext exposition:
    /// `# TYPE` lines followed by `name value` samples; histograms as
    /// cumulative `name_bucket{le="..."}` samples plus `name_sum` and
    /// `name_count`. Deterministic (names sorted) and re-parseable via
    /// [`RegistrySnapshot::parse`].
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (b, n) in h.buckets.iter().enumerate() {
                cum += n;
                if b == HISTOGRAM_BUCKETS - 1 {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                } else {
                    let le = bucket_upper(b);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Parses an exposition produced by [`RegistrySnapshot::render`]
    /// back into a snapshot. `parse(render(s)) == s` for any snapshot
    /// `s` whose histograms carry the full bucket layout.
    pub fn parse(text: &str) -> Result<RegistrySnapshot, String> {
        let mut snap = RegistrySnapshot::default();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("# TYPE ")
                .ok_or_else(|| format!("expected `# TYPE`, got: {line}"))?;
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or("missing metric name")?.to_string();
            let kind = it.next().ok_or("missing metric kind")?;
            match kind {
                "counter" | "gauge" => {
                    let sample = lines.next().ok_or("missing sample line")?;
                    let (n, v) = parse_sample(sample)?;
                    if n != name {
                        return Err(format!("sample `{n}` does not match TYPE `{name}`"));
                    }
                    if kind == "counter" {
                        snap.counters.insert(name, v);
                    } else {
                        snap.gauges.insert(name, v);
                    }
                }
                "histogram" => {
                    let mut h = HistogramSnapshot::default();
                    let mut prev_cum = 0u64;
                    for b in 0..HISTOGRAM_BUCKETS {
                        let sample = lines.next().ok_or("missing bucket line")?;
                        let (n, cum) = parse_sample(sample)?;
                        let want = if b == HISTOGRAM_BUCKETS - 1 {
                            format!("{name}_bucket{{le=\"+Inf\"}}")
                        } else {
                            format!("{name}_bucket{{le=\"{}\"}}", bucket_upper(b))
                        };
                        if n != want {
                            return Err(format!("expected bucket `{want}`, got `{n}`"));
                        }
                        h.buckets[b] = cum
                            .checked_sub(prev_cum)
                            .ok_or("non-monotonic cumulative bucket")?;
                        prev_cum = cum;
                    }
                    let (n, sum) = parse_sample(lines.next().ok_or("missing sum line")?)?;
                    if n != format!("{name}_sum") {
                        return Err(format!("expected `{name}_sum`, got `{n}`"));
                    }
                    let (n, count) = parse_sample(lines.next().ok_or("missing count line")?)?;
                    if n != format!("{name}_count") {
                        return Err(format!("expected `{name}_count`, got `{n}`"));
                    }
                    h.sum = sum;
                    h.count = count;
                    snap.histograms.insert(name, h);
                }
                k => return Err(format!("unknown metric kind `{k}`")),
            }
        }
        Ok(snap)
    }
}

/// Splits a `name value` exposition sample (the name may contain a
/// `{le="..."}` label suffix, which stays part of the name here).
fn parse_sample(line: &str) -> Result<(String, u64), String> {
    let line = line.trim();
    let idx = line
        .rfind(' ')
        .ok_or_else(|| format!("malformed sample: {line}"))?;
    let (name, value) = line.split_at(idx);
    let v: u64 = value
        .trim()
        .parse()
        .map_err(|_| format!("bad sample value in: {line}"))?;
    Ok((name.to_string(), v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Lower/upper of every bucket land in that bucket.
        for b in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_of(bucket_lower(b)), b);
            assert_eq!(bucket_of(bucket_upper(b)), b);
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0u64, 1, 5, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.is_consistent());
        assert_eq!(s.count, 6);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 5 + 5 + 1000).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn quantiles_bracket_observations() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // Octave accuracy: p50 of 1..=1000 is 500, bucket [256, 511].
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        assert!((512..=1023).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn render_parse_round_trip() {
        let reg = Registry::new();
        reg.counter("requests_total").add(17);
        reg.gauge("queue_depth").set(3);
        let h = reg.histogram("latency_micros");
        for v in [3u64, 90, 90, 4096] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.render();
        let back = RegistrySnapshot::parse(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_accumulates() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.histogram("h").record(7);
        let b = Registry::new();
        b.counter("c").add(3);
        b.gauge("g").set(9);
        b.histogram("h").record(900);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counters["c"], 5);
        assert_eq!(m.gauges["g"], 9);
        assert_eq!(m.histograms["h"].count, 2);
        assert!(m.histograms["h"].is_consistent());
    }
}
