//! Observability layer for the metric-DBSCAN workspace: a metrics
//! registry of lock-free atomic instruments, a phase-level tracing
//! recorder threaded through the engine, a structured key=value
//! logger, and a tiny hand-rolled `GET /metrics` responder.
//!
//! Everything here is plain `std` — no crates.io dependencies, per the
//! workspace invariant — and sits at the *bottom* of the layering so
//! every other crate can report through it.
//!
//! # Contract: observability is read-only
//!
//! Instrumentation **never affects clustering output**. Recorders and
//! metrics observe durations and counts that the pipeline already
//! produces; they take no part in any distance evaluation, ordering,
//! or tie-break. Cluster labels and evaluation counters are
//! bit-identical whether a run is traced by a [`MetricsRecorder`], a
//! [`NoopRecorder`], or no recorder at all — asserted by
//! `tests/observability.rs` across all four solvers and both candidate
//! indexes. The no-op path does no work beyond an `Option` check, so
//! disabled tracing adds no measurable overhead (`BENCH_obs.json`).
//!
//! # Pieces
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and log2-bucket
//!   [`Histogram`]s. Handles are `Arc`-backed and record lock-free;
//!   only registration (first lookup of a name) takes a lock.
//!   [`Registry::snapshot`] produces a [`RegistrySnapshot`] that can
//!   [`merge`](RegistrySnapshot::merge), [`render`](RegistrySnapshot::render)
//!   to Prometheus-style plaintext, and [`parse`](RegistrySnapshot::parse)
//!   back from it.
//! * [`Recorder`] / [`Phase`] / [`Event`] — the tracing seam the
//!   engine calls into: span-style phase durations (net build, Step-1,
//!   adjacency, Step-2, Step-3 labeling, candidate-index probe, ingest
//!   batch, artifact save/load) and discrete events (cache hit/miss,
//!   candidates emitted/rejected, points ingested).
//! * [`Logger`] — leveled, monotonic-timestamped `key=value` lines for
//!   long-running binaries (`mdbscan-serve`).
//! * [`serve_metrics`] — a minimal TCP responder answering
//!   `GET /metrics` with whatever exposition a closure provides, so a
//!   replica is scrapeable without an HTTP stack.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod http;
mod logger;
mod metrics;
mod trace;

pub use http::{serve_metrics, MetricsHttpServer};
pub use logger::{Level, Logger};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{Event, MetricsRecorder, NoopRecorder, Phase, Recorder};
