//! # metric-dbscan
//!
//! A production-quality Rust implementation of
//!
//! > Mo, Song, Ding. *Towards Metric DBSCAN: Exact, Approximate, and
//! > Streaming Algorithms.* SIGMOD 2024 (PACMMOD 2(3), article 178).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the paper's algorithms behind one owned, `Send + Sync`,
//!   `Arc`-shareable engine, [`core::MetricDbscan`]: exact metric DBSCAN
//!   (§3.1 and the §3.2 cover-tree variant), ρ-approximate DBSCAN
//!   (Algorithm 2), and the 3-pass streaming engine (Algorithm 3). Build
//!   once, probe `(ε, MinPts, ρ)` forever (Remark 5/6) — with an LRU of
//!   Step-2 fragment cover trees so *repeated* probes get cheaper still;
//! * [`metric`] — the metric-space substrate (Euclidean/L1/L∞/angular,
//!   Levenshtein/Hamming, distance-call counting);
//! * [`covertree`] — the cover-tree index (Beygelzimer et al. 2006),
//!   including the detachable [`covertree::CoverTreeSkeleton`] the
//!   engine's caches are built on;
//! * [`kcenter`] — Gonzalez, radius-guided Gonzalez (Algorithm 1),
//!   k-center with outliers;
//! * [`grid`] — the ε-aligned grid index for low-dimensional Euclidean
//!   workloads: cell-bucketed candidate generation behind
//!   [`core::CandidateIndex::Grid`], bit-identical labels with far
//!   fewer distance evaluations on millions-of-points coordinate data;
//! * [`rp`] — the seeded random-projection candidate index for
//!   high-dimensional embeddings (sDBSCAN-style top-m projection
//!   lists) behind [`core::CandidateIndex::RandomProjection`]: where
//!   high doubling dimension erodes the net-anchored pruning above,
//!   the approximate and streaming solvers draw Step-1 counting and
//!   labeling candidates from capped lists instead — deterministic for
//!   a fixed seed, with quality measured (not assumed) against the
//!   exact solver;
//! * [`parallel`] — the deterministic scoped-thread executors and flat
//!   CSR storage the pipeline runs on, plus the
//!   [`parallel::ParallelConfig`] thread knob (see `core`'s "Threading
//!   model" docs);
//! * [`persist`] — the versioned, checksummed on-disk artifact format
//!   behind [`core::MetricDbscan::save`] / `load`: restart without
//!   rebuilding, ship prebuilt indexes, fan out read replicas — loads
//!   perform **zero** distance evaluations;
//! * [`serve`] — the fault-tolerant serving tier: a deadline-enforced
//!   `std::net` query server with panic isolation and load shedding, a
//!   retrying client, and the deterministic fault-injection harness
//!   behind `tests/fault_injection.rs`;
//! * [`obs`] — std-only observability: an atomic metrics registry
//!   (counters, gauges, log2-bucket histograms), the
//!   [`core::Recorder`] phase-tracing trait the engine threads through
//!   every solver, a Prometheus-style plaintext exposition with a tiny
//!   `GET /metrics` responder, and a structured `key=value` logger.
//!   Instrumentation is **read-only with respect to clustering
//!   output** — labels are bit-identical with or without a recorder
//!   attached (asserted by `tests/observability.rs`);
//! * [`baselines`] — every comparator of the paper's evaluation;
//! * [`eval`] — ARI / AMI / NMI;
//! * [`datagen`] — deterministic synthetic workloads for all dataset
//!   classes of Table 1.
//!
//! ## Quickstart
//!
//! ```
//! use metric_dbscan::core::{DbscanParams, MetricDbscan};
//! use metric_dbscan::metric::Euclidean;
//!
//! // two tight groups and one stray point
//! let mut points: Vec<Vec<f64>> = Vec::new();
//! for i in 0..20 {
//!     points.push(vec![i as f64 * 0.01, 0.0]);
//!     points.push(vec![5.0 + i as f64 * 0.01, 0.0]);
//! }
//! points.push(vec![100.0, 100.0]);
//!
//! let engine = MetricDbscan::builder(points, Euclidean)
//!     .rbar(0.25) // r̄ ≤ ε/2 for every ε we will query
//!     .build()
//!     .unwrap();
//! let run = engine.exact(&DbscanParams::new(0.5, 5).unwrap()).unwrap();
//! assert_eq!(run.clustering.num_clusters(), 2);
//! assert!(run.clustering.labels().last().unwrap().is_noise());
//! // same parameters again → served from the fragment-tree cache
//! assert!(engine.exact(&DbscanParams::new(0.5, 5).unwrap()).unwrap().report.cache_hit);
//! ```
//!
//! ## High-dimensional embeddings
//!
//! Past d ≈ 10 the triangle-inequality sandwich the generic path prunes
//! with goes blunt: a coarse ρ-approximate net blurs every member bound
//! by ±r̄, and in high doubling dimension the straddle horizon holds an
//! order of magnitude more mass than the ε-ball being counted. For
//! unit-norm embedding vectors, store them in a
//! [`metric::VectorBlock`] (SoA kernels) and opt into the seeded
//! random-projection index:
//!
//! ```
//! use metric_dbscan::core::{
//!     ApproxParams, CandidateIndex, MetricDbscan, RpConfig,
//! };
//! use metric_dbscan::datagen::{highdim_embeddings, HighDimSpec};
//! use metric_dbscan::metric::VectorBlock;
//!
//! let rows = highdim_embeddings(
//!     HighDimSpec { n: 600, dim: 64, clusters: 3, ..Default::default() },
//!     7,
//! )
//! .into_parts()
//! .0;
//! let block = VectorBlock::<f64>::from_rows(&rows);
//! let engine = MetricDbscan::builder(block.ids(), block)
//!     .rbar(0.2) // = ρε/2 for the (ε, ρ) below
//!     .candidate_index(CandidateIndex::RandomProjection(
//!         RpConfig::new(42).projections(64).top_m(64).probes(4),
//!     ))
//!     .build()
//!     .unwrap();
//! let run = engine.approx(&ApproxParams::new(0.2, 5, 2.0).unwrap()).unwrap();
//! assert!(run.report.rp.candidates_emitted > 0); // RP actually engaged
//! assert!(run.clustering.num_clusters() >= 1);
//! ```
//!
//! The seed is part of the engine configuration, so RP-backed runs stay
//! bit-identical across thread counts, ingest-vs-fresh builds, and
//! artifact round trips; what a candidate miss costs is *quality*
//! against the exact solver (measure it with [`eval`]), never
//! nondeterminism. `BENCH_highdim.json` tracks the headline: at
//! d = 128, n = 50k the RP index cuts Step-1 + labeling distance
//! evaluations ≥ 3× versus the pruned generic path at ARI ≥ 0.95.
//!
//! One-shot free functions ([`core::exact_dbscan`], [`core::approx_dbscan`])
//! remain for scripts that cluster borrowed data exactly once.
//!
//! See `examples/` for text clustering under edit distance, streaming
//! session clustering, parameter tuning on a shared engine, and
//! high-dimensional outlier-robust clustering.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use mdbscan_baselines as baselines;
pub use mdbscan_core as core;
pub use mdbscan_covertree as covertree;
pub use mdbscan_datagen as datagen;
pub use mdbscan_eval as eval;
pub use mdbscan_grid as grid;
pub use mdbscan_kcenter as kcenter;
pub use mdbscan_metric as metric;
pub use mdbscan_obs as obs;
pub use mdbscan_parallel as parallel;
pub use mdbscan_persist as persist;
pub use mdbscan_rp as rp;
pub use mdbscan_serve as serve;
