//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no network access, so this workspace vendors
//! the *subset* of `rand` it actually uses: [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the workspace requires (every caller seeds
//! explicitly).
//!
//! This is **not** a cryptographic RNG and makes no distribution-quality
//! claims beyond "good enough for synthetic data generation and tests".
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Uniform sampling of a value of type `Self` from an RNG.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range that [`Rng::random_range`] can sample values of type `T`
/// from uniformly. There is exactly one impl per range shape (blanket
/// over [`SampleUniform`]), so the caller's expected type and the range
/// literals unify — integer-literal inference behaves like real rand's.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform ranges can be sampled over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased-enough bounded integer via 128-bit widening multiply
/// (Lemire's method without the rejection step — the bias is below
/// 2⁻⁶⁴·span, irrelevant for data generation).
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The random-number-generator trait: one required method
/// ([`Rng::next_u64`]), everything else derived.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T` (e.g. `f64` in `[0,1)`,
    /// `bool`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic distribution samplers layered over [`Rng`].
///
/// The workspace needs exactly one non-uniform distribution — the
/// standard normal — for random-projection directions
/// (`mdbscan_rp`) and synthetic Gaussian mixtures (`mdbscan_datagen`).
/// Box–Muller over the uniform source keeps the draw count per sample
/// fixed (two `next_u64` calls per sample, plus a vanishingly rare
/// rejection of `u1 = 0`), so a seeded stream of normals is
/// reproducible across platforms exactly like the uniform stream.
pub mod distr {
    use super::Rng;

    /// The standard normal distribution `N(0, 1)`.
    ///
    /// ```
    /// use rand::distr::StandardNormal;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let x: f64 = StandardNormal.sample(&mut rng);
    /// assert!(x.is_finite());
    /// ```
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one `N(0, 1)` sample via Box–Muller.
        ///
        /// Uses the cosine branch only, so each sample consumes exactly
        /// two uniform draws (`u1 = 0`, probability 2⁻⁵³ per draw, is
        /// rejected to keep `ln` finite).
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            loop {
                let u1: f64 = super::StandardSample::sample(rng);
                if u1 <= f64::MIN_POSITIVE {
                    continue;
                }
                let u2: f64 = super::StandardSample::sample(rng);
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Free-function form of [`StandardNormal::sample`].
    pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        StandardNormal.sample(rng)
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&x));
            let i = rng.random_range(5usize..10);
            assert!((5..10).contains(&i));
            let n: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn unit_float_distribution_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_is_deterministic_and_sane() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let x = super::distr::standard_normal(&mut a);
            let y = super::distr::StandardNormal.sample(&mut b);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| super::distr::standard_normal(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
        assert!([0u32, 7, 49].iter().all(|x| v.contains(x)));
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
