//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups with
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and [`Throughput`].
//!
//! Statistics are deliberately simple: after a short warm-up, each
//! benchmark runs `sample_size` samples and reports min / mean / max
//! wall time per iteration (plus throughput when declared) as one line
//! on stdout. No plots, no saved baselines, no outlier analysis —
//! enough to compare orders of magnitude and track regressions by eye.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Declared per-iteration work, echoed as elements/second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives timing closures; handed to the `|b| ...` callbacks.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one sample per call, after a warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's samples-per-benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &label, &b.samples, self.throughput);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        self.run(id.into_label(), |b| f(b));
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.label.clone(), |b| f(b, input));
    }

    /// Ends the group (separator line).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, &mut f);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let qualified = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  thrpt: {per_sec:.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
            format!("  thrpt: {per_sec:.2} MiB/s")
        }
        None => String::new(),
    };
    println!(
        "{qualified:<48} time: [{} {} {}]{tp}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
