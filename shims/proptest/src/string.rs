//! String strategies from miniature regex patterns.
//!
//! Real proptest compiles full regexes; this stand-in understands the
//! subset its workspace uses: literal characters, `[a-d]`-style classes
//! (ranges and singletons), and an optional `{m}` / `{m,n}` repeat
//! after a class. That covers patterns like `"[a-d]{0,8}"` or
//! `"[ab]{6}"`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Piece {
    Literal(char),
    Class {
        chars: Vec<char>,
        lo: usize,
        hi: usize,
    }, // hi inclusive
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        if c == '[' {
            let mut chars = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match it.next() {
                    Some(']') => break,
                    Some('-') if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                        let start = prev.take().expect("checked");
                        let end = it.next().expect("peeked");
                        // `start` was already pushed; extend the range past it.
                        let mut ch = start;
                        while ch < end {
                            ch = char::from_u32(ch as u32 + 1).expect("ascii range");
                            chars.push(ch);
                        }
                    }
                    Some(ch) => {
                        chars.push(ch);
                        prev = Some(ch);
                    }
                    None => panic!("unterminated character class in pattern {pattern:?}"),
                }
            }
            assert!(!chars.is_empty(), "empty character class in {pattern:?}");
            let (lo, hi) = if it.peek() == Some(&'{') {
                it.next();
                let spec: String = it.by_ref().take_while(|&ch| ch != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repeat lower bound"),
                        n.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let m: usize = spec.trim().parse().expect("repeat count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece::Class { chars, lo, hi });
        } else {
            pieces.push(Piece::Literal(c));
        }
    }
    pieces
}

/// String literals act as pattern strategies producing `String`s.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(self) {
            match piece {
                Piece::Literal(c) => out.push(c),
                Piece::Class { chars, lo, hi } => {
                    let reps = if lo == hi {
                        lo
                    } else {
                        rng.random_range(lo..=hi)
                    };
                    for _ in 0..reps {
                        out.push(chars[rng.random_range(0..chars.len())]);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_range_and_repeat() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-d]{0,8}".sample(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn fixed_repeat_and_literals() {
        let mut rng = TestRng::from_seed(2);
        let s = "x[ab]{6}y".sample(&mut rng);
        assert_eq!(s.len(), 8);
        assert!(s.starts_with('x') && s.ends_with('y'));
        assert!(s[1..7].chars().all(|c| c == 'a' || c == 'b'));
    }
}
