//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *subset* of proptest it uses: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`], and
//! string strategies from simple `[class]{m,n}` patterns.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via the case
//!   seed) but is not minimized;
//! * sampling is plain uniform, with none of proptest's bias toward
//!   edge cases;
//! * the regex-string strategy understands only literal characters and
//!   `[a-z]` classes with an optional `{m}` / `{m,n}` repeat.
//!
//! Tests are deterministic: the RNG is seeded from the test name, so a
//! failure reproduces by re-running the same test binary.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic randomized property tests.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0.0f64..1.0, (a, b) in my_strategy()) {
///         prop_assert!(x >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($a),
                            stringify!($b),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}
