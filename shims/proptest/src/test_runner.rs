//! Configuration, RNG, and error type behind the [`crate::proptest!`]
//! macro.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many randomized cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (returned, not panicked, so the macro can
/// attach the case index).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure from any displayable reason. Usable both as
    /// `TestCaseError::fail("...")` and point-free in
    /// `map_err(TestCaseError::fail)`.
    pub fn fail<S: ToString>(reason: S) -> Self {
        Self(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-test RNG strategies sample from.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from the test's fully qualified name (FNV-1a), so every
    /// test gets a distinct deterministic stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    /// Seeds directly.
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
