//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// A strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `vec(element, len)` — a vector whose length is drawn from `len`
/// (a fixed `usize` or a range) and whose elements are drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.random_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
