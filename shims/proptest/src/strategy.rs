//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// sampler.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only values satisfying `pred` (resampling up to a bounded
    /// number of tries). `reason` is reported when the filter starves.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Transforms sampled values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (API compatibility shim).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter starved: {}", self.reason);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A heap-allocated strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.dyn_sample(rng)
    }
}

/// Strategies compose through references too (`&strategy` samples like
/// `strategy`), which the tuple impls below rely on.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+)
;
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
