//! Quickstart: the `MetricDbscan` engine on a 2-D dataset with outliers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metric_dbscan::core::{CandidateIndex, DbscanParams, MetricDbscan, MetricsRecorder};
use metric_dbscan::datagen::moons;
use metric_dbscan::eval::{adjusted_mutual_info, adjusted_rand_index};
use metric_dbscan::metric::{Euclidean, VectorBlock};
use metric_dbscan::obs::Registry;

fn main() {
    // Two interleaved half-moons, 2 % scattered outliers.
    let dataset = moons(2000, 0.06, 0.02, 42);

    // DBSCAN parameters: neighborhood radius ε and density threshold.
    let eps = 0.12;
    let min_pts = 10;

    // The engine owns its points and metric: build once (Algorithm 1 at
    // r̄ = ε/2), query as often as you like — from any thread.
    let (points, labels) = dataset.into_parts();
    let engine = MetricDbscan::builder(points, Euclidean)
        .rbar(eps / 2.0)
        .build()
        .expect("non-empty input and a valid radius");

    let run = engine
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("rbar is fine enough for this eps");
    let clustering = &run.clustering;

    println!(
        "{} points -> {} clusters, {} core / {} border / {} noise in {:.1} ms",
        engine.num_points(),
        clustering.num_clusters(),
        clustering.num_core(),
        clustering.num_border(),
        clustering.num_noise(),
        run.report.total_secs * 1e3,
    );

    // Ground truth is available for the synthetic data: score the result.
    let truth = labels.expect("generator provides labels");
    let pred = clustering.assignments();
    println!(
        "ARI = {:.3}, AMI = {:.3}",
        adjusted_rand_index(&truth, &pred),
        adjusted_mutual_info(&truth, &pred),
    );

    // Cluster sizes, without materializing the member lists.
    for (k, size) in clustering.cluster_sizes().iter().enumerate() {
        println!("cluster {k}: {size} points");
    }

    // Persist the engine: the net, the dis(p, c_p) anchors, and every
    // cached artifact go to disk as one versioned, checksummed file, so
    // a restarted process (or a read replica) answers immediately —
    // loading performs zero distance evaluations, and the reloaded
    // engine is bit-identical to this one.
    let artifact = std::env::temp_dir().join("quickstart_engine.mdb");
    engine.save(&artifact).expect("save engine artifact");
    let restored = MetricDbscan::load(&artifact, Euclidean).expect("load engine artifact");
    let warm = restored
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("the restored engine serves the same parameters");
    assert_eq!(warm.clustering, run.clustering);
    println!(
        "saved {} bytes, reloaded, re-answered in {:.2} ms (cache hit: {})",
        std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0),
        warm.report.total_secs * 1e3,
        warm.report.cache_hit,
    );
    std::fs::remove_file(&artifact).ok();

    // Low-dimensional coordinate data? Pack it into a `VectorBlock` and
    // flip on the ε-aligned grid candidate index: same labels,
    // bit-identical, but Step 1 / adjacency / labeling only inspect
    // candidates from nearby grid cells instead of whole net balls.
    let rows = moons(2000, 0.06, 0.02, 42).into_parts().0;
    let block = VectorBlock::<f64>::from_rows(&rows);
    let grid_engine = MetricDbscan::builder(block.ids(), block)
        .rbar(eps / 2.0)
        .candidate_index(CandidateIndex::Grid)
        .build()
        .expect("engine");
    let grid_run = grid_engine
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("grid run");
    assert_eq!(
        grid_run.clustering.assignments(),
        run.clustering.assignments()
    );
    println!(
        "grid index: {} cells probed, {} candidates emitted, {} rejected without a distance call",
        grid_run.report.candidates.cells_probed,
        grid_run.report.candidates.candidates_emitted,
        grid_run.report.candidates.candidates_rejected,
    );

    // Cold start at production scale: `save_self_contained` embeds the
    // block in the artifact, and the loader decodes coordinates *by
    // reference* into the file buffer — a replica boots copying a few
    // fixed header bytes no matter how many points it serves
    // (`load_stats` reports exactly how many), then answers warm out of
    // the persisted caches.
    let artifact = std::env::temp_dir().join("quickstart_block.mdb");
    grid_engine
        .save_self_contained(&artifact)
        .expect("save self-contained artifact");
    let replica = MetricDbscan::<u32, VectorBlock<f64>>::load_self_contained(&artifact)
        .expect("load self-contained artifact");
    let stats = replica.load_stats().expect("loaded engines carry stats");
    let replica_run = replica
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("the replica serves the same parameters");
    assert_eq!(replica_run.clustering, grid_run.clustering);
    println!(
        "zero-copy boot: copied {} of {} payload bytes, answered warm (cache hit: {})",
        stats.bytes_copied(),
        stats.point_payload_bytes + stats.metric_payload_bytes,
        replica_run.report.cache_hit,
    );
    std::fs::remove_file(&artifact).ok();

    // Observability: attach a `MetricsRecorder` and every pipeline
    // phase (net build, Step 1, adjacency, Step 2, Step 3) lands in a
    // shared registry as a log2-bucket latency histogram, alongside
    // cache hit/miss counters. Instrumentation is read-only with
    // respect to clustering output — labels are bit-identical with or
    // without it.
    let registry = Registry::new();
    let traced = replica.with_recorder(MetricsRecorder::shared(&registry));
    let traced_run = traced
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("same parameters as before");
    assert_eq!(traced_run.clustering, replica_run.clustering);
    let snapshot = registry.snapshot();
    println!(
        "observability: {} histograms, {} counters; step1 observed {} time(s)",
        snapshot.histograms.len(),
        snapshot.counters.len(),
        snapshot
            .histograms
            .get("mdbscan_phase_step1_micros")
            .map_or(0, |h| h.count),
    );
    // `snapshot.render()` is the same Prometheus-style plaintext a
    // served replica exposes at `GET /metrics`.
}
