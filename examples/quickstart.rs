//! Quickstart: the `MetricDbscan` engine on a 2-D dataset with outliers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metric_dbscan::core::{DbscanParams, MetricDbscan};
use metric_dbscan::datagen::moons;
use metric_dbscan::eval::{adjusted_mutual_info, adjusted_rand_index};
use metric_dbscan::metric::Euclidean;

fn main() {
    // Two interleaved half-moons, 2 % scattered outliers.
    let dataset = moons(2000, 0.06, 0.02, 42);

    // DBSCAN parameters: neighborhood radius ε and density threshold.
    let eps = 0.12;
    let min_pts = 10;

    // The engine owns its points and metric: build once (Algorithm 1 at
    // r̄ = ε/2), query as often as you like — from any thread.
    let (points, labels) = dataset.into_parts();
    let engine = MetricDbscan::builder(points, Euclidean)
        .rbar(eps / 2.0)
        .build()
        .expect("non-empty input and a valid radius");

    let run = engine
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("rbar is fine enough for this eps");
    let clustering = &run.clustering;

    println!(
        "{} points -> {} clusters, {} core / {} border / {} noise in {:.1} ms",
        engine.num_points(),
        clustering.num_clusters(),
        clustering.num_core(),
        clustering.num_border(),
        clustering.num_noise(),
        run.report.total_secs * 1e3,
    );

    // Ground truth is available for the synthetic data: score the result.
    let truth = labels.expect("generator provides labels");
    let pred = clustering.assignments();
    println!(
        "ARI = {:.3}, AMI = {:.3}",
        adjusted_rand_index(&truth, &pred),
        adjusted_mutual_info(&truth, &pred),
    );

    // Cluster sizes, without materializing the member lists.
    for (k, size) in clustering.cluster_sizes().iter().enumerate() {
        println!("cluster {k}: {size} points");
    }
}
