//! Quickstart: exact metric DBSCAN on a 2-D dataset with outliers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metric_dbscan::core::exact_dbscan;
use metric_dbscan::datagen::moons;
use metric_dbscan::eval::{adjusted_mutual_info, adjusted_rand_index};
use metric_dbscan::metric::Euclidean;

fn main() {
    // Two interleaved half-moons, 2 % scattered outliers.
    let dataset = moons(2000, 0.06, 0.02, 42);
    let points = dataset.points();

    // DBSCAN parameters: neighborhood radius ε and density threshold.
    let eps = 0.12;
    let min_pts = 10;

    let clustering = exact_dbscan(points, &Euclidean, eps, min_pts).expect("valid parameters");

    println!(
        "{} points -> {} clusters, {} core / {} border / {} noise",
        points.len(),
        clustering.num_clusters(),
        clustering.num_core(),
        clustering.num_border(),
        clustering.num_noise(),
    );

    // Ground truth is available for the synthetic data: score the result.
    let truth = dataset.labels().expect("generator provides labels");
    let pred = clustering.assignments();
    println!(
        "ARI = {:.3}, AMI = {:.3}",
        adjusted_rand_index(truth, &pred),
        adjusted_mutual_info(truth, &pred),
    );

    // Cluster sizes.
    for (k, members) in clustering.clusters().iter().enumerate() {
        println!("cluster {k}: {} points", members.len());
    }
}
