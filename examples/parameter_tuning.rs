//! Parameter tuning on a shared engine (Remark 5/6): Algorithm 1 runs
//! once; every `(ε, MinPts)` probe afterwards only pays the cheap steps.
//! Table 2 of the paper measures the pre-processing at 60–99 % of total
//! runtime — this example shows the saving directly, plus the PR-2
//! fragment-tree LRU: *repeating* a setting replays the cached Step-1/2
//! artifacts and gets cheaper still.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use std::time::Instant;

use metric_dbscan::core::{DbscanParams, MetricDbscan};
use metric_dbscan::datagen::{manifold_clusters, ManifoldSpec};
use metric_dbscan::metric::Euclidean;

fn main() {
    let data = manifold_clusters(
        &ManifoldSpec {
            n: 5000,
            ambient_dim: 256,
            intrinsic_dim: 6,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
            ambient_box: 60.0,
        },
        3,
    );
    let (points, _) = data.into_parts();
    let n = points.len();

    // Build the engine once, at half the *smallest* ε we intend to try.
    let eps_grid = [3.0, 4.0, 5.0, 6.0];
    let minpts_grid = [5, 10, 20];
    let t = Instant::now();
    let engine = MetricDbscan::builder(points, Euclidean)
        .rbar(eps_grid[0] / 2.0)
        .build()
        .expect("build");
    println!(
        "Algorithm 1: {:.1} ms for {} centers over {n} points",
        t.elapsed().as_secs_f64() * 1e3,
        engine.num_centers(),
    );

    println!("\neps\tminpts\tclusters\tnoise\tsolve_ms\tcache");
    // Sweep the grid twice: the second pass hits the fragment-tree LRU.
    for pass in 0..2 {
        if pass == 1 {
            println!("# second pass over the same grid (LRU warm)");
        }
        for &eps in &eps_grid {
            for &min_pts in &minpts_grid {
                let params = DbscanParams::new(eps, min_pts).expect("valid");
                let run = engine.exact(&params).expect("engine is fine enough");
                println!(
                    "{eps}\t{min_pts}\t{}\t{}\t{:.1}\t{}",
                    run.clustering.num_clusters(),
                    run.clustering.num_noise(),
                    run.report.total_secs * 1e3,
                    if run.report.cache_hit { "hit" } else { "miss" },
                );
            }
        }
    }
    let cache = engine.cache_stats();
    println!(
        "\ncache: {} hits / {} misses, {} resident entries ({} KiB)",
        cache.hits,
        cache.misses,
        cache.entries,
        engine.cache_heap_bytes() / 1024,
    );

    // Asking for an ε finer than the engine supports is a typed error,
    // not a wrong answer.
    let too_fine = DbscanParams::new(1.0, 10).expect("valid");
    match engine.exact(&too_fine) {
        Err(e) => println!("requesting eps=1.0 on this engine: {e}"),
        Ok(_) => unreachable!("the engine must reject eps < 2*rbar"),
    }
}
