//! Parameter tuning on a shared index (Remark 5/6): Algorithm 1 runs
//! once; every `(ε, MinPts)` probe afterwards only pays the cheap steps.
//! Table 2 of the paper measures the pre-processing at 60–99 % of total
//! runtime — this example shows the saving directly.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use std::time::Instant;

use metric_dbscan::core::{DbscanParams, GonzalezIndex};
use metric_dbscan::datagen::{manifold_clusters, ManifoldSpec};
use metric_dbscan::metric::Euclidean;

fn main() {
    let data = manifold_clusters(
        &ManifoldSpec {
            n: 5000,
            ambient_dim: 256,
            intrinsic_dim: 6,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
            ambient_box: 60.0,
        },
        3,
    );
    let points = data.points();

    // Build the net once, at half the *smallest* ε we intend to try.
    let eps_grid = [3.0, 4.0, 5.0, 6.0];
    let minpts_grid = [5, 10, 20];
    let t = Instant::now();
    let index = GonzalezIndex::build(points, &Euclidean, eps_grid[0] / 2.0).expect("build");
    println!(
        "Algorithm 1: {:.1} ms for {} centers over {} points",
        t.elapsed().as_secs_f64() * 1e3,
        index.num_centers(),
        points.len(),
    );

    println!("\neps\tminpts\tclusters\tnoise\tsolve_ms");
    for &eps in &eps_grid {
        for &min_pts in &minpts_grid {
            let params = DbscanParams::new(eps, min_pts).expect("valid");
            let t = Instant::now();
            let c = index.exact(&params).expect("index is fine enough");
            println!(
                "{eps}\t{min_pts}\t{}\t{}\t{:.1}",
                c.num_clusters(),
                c.num_noise(),
                t.elapsed().as_secs_f64() * 1e3,
            );
        }
    }

    // Asking for an ε finer than the index supports is a typed error,
    // not a wrong answer.
    let too_fine = DbscanParams::new(1.0, 10).expect("valid");
    match index.exact(&too_fine) {
        Err(e) => println!("\nrequesting eps=1.0 on this index: {e}"),
        Ok(_) => unreachable!("the index must reject eps < 2*rbar"),
    }
}
