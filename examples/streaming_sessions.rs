//! Streaming ρ-approximate DBSCAN (Algorithm 3) over a drifting session
//! stream — the paper's Spotify_Session scenario: the stream is far too
//! large to hold, but three passes and O((Δ/ρε)^D + z) memory suffice.
//!
//! ```sh
//! cargo run --release --example streaming_sessions
//! ```

use metric_dbscan::core::{ApproxParams, StreamingApproxDbscan};
use metric_dbscan::datagen::DriftingStream;
use metric_dbscan::eval::{adjusted_mutual_info, adjusted_rand_index};
use metric_dbscan::metric::Euclidean;

fn main() {
    // 50k-point stream of 6 drifting session archetypes + 1 % outliers.
    let stream = DriftingStream {
        n: 50_000,
        dim: 21,          // ambient feature dimension
        intrinsic_dim: 4, // sessions vary along few latent factors
        sources: 6,
        std: 0.6,
        drift: 0.0005,
        outlier_prob: 0.01,
        boxsize: 80.0,
        seed: 7,
    };

    let params = ApproxParams::new(2.0, 10, 0.5).expect("valid parameters");

    // The engine can also be driven pass-by-pass over a real data source;
    // `run` replays the factory three times.
    let (clustering, engine) =
        StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter()).expect("non-empty");

    let fp = engine.footprint();
    println!(
        "stream of {} points -> {} clusters, {} noise",
        stream.n,
        clustering.num_clusters(),
        clustering.num_noise(),
    );
    println!(
        "memory: {} centers + {} parked = {} stored points ({:.2}% of the stream), summary |S*| = {}",
        fp.centers,
        fp.parked,
        fp.stored_points(),
        100.0 * fp.stored_points() as f64 / stream.n as f64,
        fp.summary,
    );

    let truth = stream.labels();
    let pred = clustering.assignments();
    println!(
        "ARI = {:.3}, AMI = {:.3}",
        adjusted_rand_index(&truth, &pred),
        adjusted_mutual_info(&truth, &pred),
    );
}
