//! Streaming ρ-approximate DBSCAN (Algorithm 3) over a drifting session
//! stream — the paper's Spotify_Session scenario: the stream is far too
//! large to hold, but three passes and O((Δ/ρε)^D + z) memory suffice.
//!
//! Two ways to run it:
//!
//! 1. a standalone [`StreamingApproxDbscan`] over a replayable stream
//!    (nothing is ever owned in full);
//! 2. a session opened from a [`MetricDbscan`] engine
//!    ([`MetricDbscan::streaming_session`]) — the deployment shape where
//!    an engine already serves exact/approx queries on reference data and
//!    hands out Algorithm-3 sessions (same metric, same thread knob) for
//!    live traffic.
//!
//! ```sh
//! cargo run --release --example streaming_sessions
//! ```

use metric_dbscan::core::{ApproxParams, MetricDbscan, StreamingApproxDbscan};
use metric_dbscan::datagen::DriftingStream;
use metric_dbscan::eval::{adjusted_mutual_info, adjusted_rand_index};
use metric_dbscan::metric::Euclidean;

fn main() {
    // 50k-point stream of 6 drifting session archetypes + 1 % outliers.
    let stream = DriftingStream {
        n: 50_000,
        dim: 21,          // ambient feature dimension
        intrinsic_dim: 4, // sessions vary along few latent factors
        sources: 6,
        std: 0.6,
        drift: 0.0005,
        outlier_prob: 0.01,
        boxsize: 80.0,
        seed: 7,
    };

    let params = ApproxParams::new(2.0, 10, 0.5).expect("valid parameters");

    // --- 1. standalone: `run` replays the factory three times ---
    let (clustering, engine) =
        StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter()).expect("non-empty");

    let fp = engine.footprint();
    println!(
        "stream of {} points -> {} clusters, {} noise",
        stream.n,
        clustering.num_clusters(),
        clustering.num_noise(),
    );
    println!(
        "memory: {} centers + {} parked = {} stored points ({:.2}% of the stream), summary |S*| = {}",
        fp.centers,
        fp.parked,
        fp.stored_points(),
        100.0 * fp.stored_points() as f64 / stream.n as f64,
        fp.summary,
    );

    let truth = stream.labels();
    let pred = clustering.assignments();
    println!(
        "ARI = {:.3}, AMI = {:.3}",
        adjusted_rand_index(&truth, &pred),
        adjusted_mutual_info(&truth, &pred),
    );

    // --- 2. engine-issued session: reference data + live stream ---
    // The engine owns a historical sample (here: the first 2000 stream
    // points) and serves parameter probes on it; live streams get their
    // own bounded-memory sessions from the same engine.
    let sample: Vec<Vec<f64>> = stream.iter().take(2000).collect();
    let engine = MetricDbscan::builder(sample, Euclidean)
        .rbar(params.rbar())
        .build()
        .expect("build");
    let probe = engine.approx(&params).expect("probe");
    println!(
        "\nengine over a 2000-point sample: {} clusters on the reference data",
        probe.clustering.num_clusters(),
    );

    let mut session = engine.streaming_session(&params);
    for p in stream.iter() {
        session.pass1_observe(&p);
    }
    session.finish_pass1();
    for p in stream.iter() {
        session.pass2_observe(&p);
    }
    session.finish_pass2();
    let noise = stream
        .iter()
        .filter(|p| session.pass3_label(p).is_noise())
        .count();
    let fp = session.footprint();
    println!(
        "engine-issued session labeled the full stream: {} noise, {} stored points",
        noise,
        fp.stored_points(),
    );
}
