//! The paper's core premise, end to end: data whose *inliers* live on a
//! low-dimensional manifold inside a huge ambient space, with adversarial
//! outliers scattered anywhere (the AI-security scenario of §1). One
//! `MetricDbscan` engine — built once — runs both the exact and the
//! ρ-approximate solver over the same net; a distance-evaluation counter
//! shows the sub-quadratic behavior that Assumption 1 buys.
//!
//! ```sh
//! cargo run --release --example high_dim_outliers
//! ```

use metric_dbscan::core::{ApproxParams, DbscanParams, MetricDbscan};
use metric_dbscan::datagen::{manifold_clusters, ManifoldSpec};
use metric_dbscan::eval::adjusted_rand_index;
use metric_dbscan::metric::{estimate_doubling_dimension, CountingMetric, Euclidean};

fn main() {
    let spec = ManifoldSpec {
        n: 4000,
        ambient_dim: 784, // MNIST-shaped ambient space
        intrinsic_dim: 5, // ... but intrinsically 5-dimensional
        clusters: 10,
        std: 1.0,
        center_box: 40.0,
        outlier_frac: 0.02, // adversarial ambient outliers
        ambient_box: 60.0,
    };
    let data = manifold_clusters(&spec, 9);
    let (points, labels) = data.into_parts();
    let truth = labels.expect("labeled");

    // Confirm the premise: the inliers' empirical doubling dimension is
    // tiny compared to the ambient 784.
    let inliers: Vec<Vec<f64>> = points
        .iter()
        .zip(&truth)
        .filter(|(_, &l)| l >= 0)
        .map(|(p, _)| p.clone())
        .take(1000)
        .collect();
    let probe = estimate_doubling_dimension(&inliers, &Euclidean, 6);
    println!(
        "ambient dimension: {}, doubling-dimension probe of the inliers: {:.1}",
        spec.ambient_dim, probe.dimension
    );

    let n = points.len() as u64;
    let eps = 4.0;
    let min_pts = 10;

    // ρ = 1 keeps the net at the same resolution as the exact solver
    // (r̄ = ρε/2 = ε/2), so ONE engine serves both entry points and
    // isolates Algorithm 2's actual trade: the core-point summary
    // replaces the BCP merge. Smaller ρ would demand a finer net, whose
    // (1/ρ)^D extra centers dominate at this scale — see EXPERIMENTS.md
    // for the measured crossover.
    let aparams = ApproxParams::new(eps, min_pts, 1.0).expect("valid");
    let counting = CountingMetric::new(Euclidean);
    let engine = MetricDbscan::builder(points, &counting)
        .rbar(aparams.rbar())
        .build()
        .expect("build");
    println!(
        "\nAlgorithm 1 (shared by both solvers): {} centers, {} distance evals",
        engine.num_centers(),
        counting.count(),
    );

    counting.reset();
    let exact = engine
        .exact(&DbscanParams::new(eps, min_pts).expect("valid"))
        .expect("query");
    let evals = counting.count();
    println!(
        "exact:  {} clusters, {} noise, ARI {:.3}, {} distance evals ({:.1}% of n²)",
        exact.clustering.num_clusters(),
        exact.clustering.num_noise(),
        adjusted_rand_index(&truth, &exact.clustering.assignments()),
        evals,
        100.0 * evals as f64 / (n * n) as f64,
    );

    counting.reset();
    let approx = engine.approx(&aparams).expect("query");
    let evals = counting.count();
    println!(
        "approx: {} clusters, {} noise, ARI {:.3}, {} distance evals ({:.1}% of n²)",
        approx.clustering.num_clusters(),
        approx.clustering.num_noise(),
        adjusted_rand_index(&truth, &approx.clustering.assignments()),
        evals,
        100.0 * evals as f64 / (n * n) as f64,
    );

    // Every planted outlier should be labeled noise (they are far from
    // the manifold with overwhelming probability).
    let caught = truth
        .iter()
        .zip(exact.clustering.labels())
        .filter(|(&t, l)| t == -1 && l.is_noise())
        .count();
    let planted = truth.iter().filter(|&&t| t == -1).count();
    println!("\noutliers caught by exact: {caught}/{planted}");
}
