//! Clustering text by edit distance — the paper's motivating
//! general-metric-space workload ("clustering a set of texts by using
//! edit distance", §1): no coordinates, no grid, just a distance oracle.
//!
//! ```sh
//! cargo run --release --example text_clustering
//! ```

use metric_dbscan::core::{approx_dbscan, exact_dbscan};
use metric_dbscan::metric::{CountingMetric, Levenshtein};

fn main() {
    // A small corpus: misspelled variants of three head words plus junk.
    let corpus: Vec<String> = [
        // cluster: "clustering"
        "clustering",
        "clusterng",
        "clustering!",
        "klustering",
        "clusterings",
        "cluster1ng",
        "clusterinng",
        "cllustering",
        "clustring",
        "clusteringg",
        // cluster: "database"
        "database",
        "databse",
        "dattabase",
        "databases",
        "databaze",
        "datebase",
        "databasee",
        "xdatabase",
        "databas",
        "dat4base",
        // cluster: "streaming"
        "streaming",
        "streeming",
        "streamin",
        "sstreaming",
        "str3aming",
        "streaming?",
        "strexming",
        "streamingo",
        "treaming",
        "stream1ng",
        // junk
        "zygomorphic",
        "quixotic",
        "brrr",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Count distance evaluations: with edit distance each one is O(L²)
    // work, so the whole point of the metric DBSCAN machinery is to make
    // this number small.
    let metric = CountingMetric::new(Levenshtein);

    let eps = 3.0; // up to 3 edits = same word family
    let min_pts = 4;

    let clustering = exact_dbscan(&corpus, &metric, eps, min_pts).expect("valid parameters");
    println!(
        "exact: {} clusters / {} noise words using {} distance evaluations\n",
        clustering.num_clusters(),
        clustering.num_noise(),
        metric.count(),
    );
    for (k, members) in clustering.clusters().iter().enumerate() {
        let words: Vec<&str> = members.iter().map(|&i| corpus[i].as_str()).collect();
        println!("cluster {k}: {words:?}");
    }
    let noise: Vec<&str> = clustering
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_noise())
        .map(|(i, _)| corpus[i].as_str())
        .collect();
    println!("noise: {noise:?}\n");

    // The ρ-approximate solver trades a merge-radius relaxation for a
    // smaller summary; on text it usually answers with far fewer distance
    // evaluations at the same clustering.
    metric.reset();
    let approx = approx_dbscan(&corpus, &metric, eps, min_pts, 0.5).expect("valid parameters");
    println!(
        "rho=0.5 approx: {} clusters / {} noise using {} distance evaluations",
        approx.num_clusters(),
        approx.num_noise(),
        metric.count(),
    );
}
