//! Clustering text by edit distance — the paper's motivating
//! general-metric-space workload ("clustering a set of texts by using
//! edit distance", §1): no coordinates, no grid, just a distance oracle.
//! One engine, built once over the corpus, serves both the exact and the
//! ρ-approximate solver.
//!
//! ```sh
//! cargo run --release --example text_clustering
//! ```

use metric_dbscan::core::{ApproxParams, DbscanParams, MetricDbscan};
use metric_dbscan::metric::{CountingMetric, Levenshtein};

fn main() {
    // A small corpus: misspelled variants of three head words plus junk.
    let corpus: Vec<String> = [
        // cluster: "clustering"
        "clustering",
        "clusterng",
        "clustering!",
        "klustering",
        "clusterings",
        "cluster1ng",
        "clusterinng",
        "cllustering",
        "clustring",
        "clusteringg",
        // cluster: "database"
        "database",
        "databse",
        "dattabase",
        "databases",
        "databaze",
        "datebase",
        "databasee",
        "xdatabase",
        "databas",
        "dat4base",
        // cluster: "streaming"
        "streaming",
        "streeming",
        "streamin",
        "sstreaming",
        "str3aming",
        "streaming?",
        "strexming",
        "streamingo",
        "treaming",
        "stream1ng",
        // junk
        "zygomorphic",
        "quixotic",
        "brrr",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Count distance evaluations: with edit distance each one is O(L²)
    // work, so the whole point of the metric DBSCAN machinery is to make
    // this number small. The engine borrows the metric (`&M` is itself a
    // `Metric`), so the counter stays readable out here.
    let metric = CountingMetric::new(Levenshtein);

    let eps = 3.0; // up to 3 edits = same word family
    let min_pts = 4;
    let rho = 0.5;

    // r̄ = ρε/2 is fine enough for both the exact query (needs ≤ ε/2)
    // and the ρ-approximate one (needs ≤ ρε/2).
    let aparams = ApproxParams::new(eps, min_pts, rho).expect("valid parameters");
    let engine = MetricDbscan::builder(corpus.clone(), &metric)
        .rbar(aparams.rbar())
        .build()
        .expect("build");
    let build_evals = metric.count();
    println!("Algorithm 1 once for both solvers: {build_evals} distance evaluations\n");

    metric.reset();
    let run = engine
        .exact(&DbscanParams::new(eps, min_pts).expect("valid parameters"))
        .expect("query");
    let clustering = &run.clustering;
    println!(
        "exact: {} clusters / {} noise words using {} distance evaluations\n",
        clustering.num_clusters(),
        clustering.num_noise(),
        metric.count(),
    );
    for (k, members) in clustering.iter_clusters() {
        let words: Vec<&str> = members.iter().map(|&i| corpus[i].as_str()).collect();
        println!("cluster {k}: {words:?}");
    }
    let noise: Vec<&str> = clustering
        .labels()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_noise())
        .map(|(i, _)| corpus[i].as_str())
        .collect();
    println!("noise: {noise:?}\n");

    // The ρ-approximate solver trades a merge-radius relaxation for a
    // smaller summary; on text it usually answers with far fewer distance
    // evaluations at the same clustering.
    metric.reset();
    let approx = engine.approx(&aparams).expect("query");
    println!(
        "rho={rho} approx: {} clusters / {} noise using {} distance evaluations",
        approx.clustering.num_clusters(),
        approx.clustering.num_noise(),
        metric.count(),
    );
}
