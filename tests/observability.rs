//! The observability contract (PR 10), certified end to end.
//!
//! 1. **Read-only instrumentation**: labels *and* distance-evaluation
//!    counts are bit-identical whether a run is traced by a
//!    `MetricsRecorder`, a `NoopRecorder`, or no recorder at all —
//!    across all four solvers on the generic path and across both
//!    candidate indexes (grid and random-projection).
//! 2. **Histogram laws**: log2-bucket placement, merge associativity,
//!    and snapshot self-consistency, property-checked.
//! 3. **Exposition round trip**: the Prometheus-style plaintext
//!    renders and parses back to the exact registry snapshot.
//! 4. **Wire + HTTP**: the `Metrics` op through a loopback server
//!    matches the in-process registry, and a booted replica answers
//!    `GET /metrics` with parseable plaintext carrying the
//!    request-latency histograms and engine gauges.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use metric_dbscan::core::{
    ApproxParams, CandidateIndex, DbscanParams, MetricDbscan, MetricsRecorder, NoopRecorder,
    ParallelConfig, Phase, Recorder, RpConfig,
};
use metric_dbscan::datagen::{blobs, lowdim_blobs, BlobSpec, LowDimSpec};
use metric_dbscan::metric::{CountingMetric, Euclidean, VectorBlock};
use metric_dbscan::obs::{Registry, RegistrySnapshot, HISTOGRAM_BUCKETS};
use metric_dbscan::serve::{Client, RetryPolicy, ServeConfig, Server, Solver};
use proptest::prelude::*;

const EPS: f64 = 1.6;
const MIN_PTS: usize = 5;
const RHO: f64 = 0.75;

fn dataset() -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n: 300,
            dim: 2,
            clusters: 3,
            std: 0.8,
            center_box: 20.0,
            outlier_frac: 0.1,
        },
        29,
    )
    .into_parts()
    .0
}

/// Runs all four solvers on a fresh engine built with the given
/// recorder; returns per-solver `(assignments, distance evals)`.
fn trace_generic(recorder: Option<Arc<dyn Recorder>>) -> Vec<(Vec<i32>, u64)> {
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).unwrap();
    let mut builder = MetricDbscan::builder(dataset(), CountingMetric::new(Euclidean))
        .rbar(aparams.rbar())
        .parallel(ParallelConfig::new(1));
    if let Some(rec) = recorder {
        builder = builder.recorder(rec);
    }
    let engine = builder.build().unwrap();
    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let mut out = Vec::new();
    engine.metric().reset();
    for solver in 0..4 {
        let run = match solver {
            0 => engine.exact(&params).unwrap(),
            1 => engine.covertree(&params).unwrap(),
            2 => engine.approx(&aparams).unwrap(),
            _ => engine.streaming(&aparams).unwrap(),
        };
        out.push((run.clustering.assignments(), engine.metric().reset()));
    }
    out
}

#[test]
fn recorder_is_read_only_for_every_solver() {
    let registry = Registry::new();
    let untraced = trace_generic(None);
    let noop = trace_generic(Some(Arc::new(NoopRecorder)));
    let traced = trace_generic(Some(MetricsRecorder::shared(&registry)));
    assert_eq!(untraced, noop, "a no-op recorder must change nothing");
    assert_eq!(
        untraced, traced,
        "a metrics recorder must not affect labels or distance evals"
    );

    // The traced engine populated every pipeline phase: net build at
    // engine construction, Step 1 / adjacency / Step 2 / Step 3 from
    // the solver runs.
    let snap = registry.snapshot();
    for phase in [
        Phase::NetBuild,
        Phase::Step1,
        Phase::Adjacency,
        Phase::Step2,
        Phase::Step3,
    ] {
        let name = format!("mdbscan_phase_{}_micros", phase.name());
        let h = snap
            .histograms
            .get(&name)
            .unwrap_or_else(|| panic!("{name} missing from the registry"));
        assert!(h.count > 0, "{name} never observed");
        assert!(h.is_consistent(), "{name} buckets disagree with count");
    }
}

/// One engine per `(index, recorder)` over the same low-dimensional
/// block; returns per-solver `(assignments, evals)` for the solvers
/// that consult candidate indexes.
fn trace_indexed(
    index: CandidateIndex,
    recorder: Option<Arc<dyn Recorder>>,
) -> Vec<(Vec<i32>, u64)> {
    let rows = lowdim_blobs(
        &LowDimSpec {
            n: 400,
            dim: 2,
            clusters: 4,
            std: 1.0,
            noise_frac: 0.05,
            extent: 30.0,
        },
        11,
    )
    .into_parts()
    .0;
    let block = VectorBlock::<f64>::from_rows(&rows);
    let aparams = ApproxParams::new(2.5, 8, 0.5).unwrap();
    let mut builder = MetricDbscan::builder(block.ids(), CountingMetric::new(block))
        .rbar(aparams.rbar())
        .parallel(ParallelConfig::new(1))
        .candidate_index(index);
    if let Some(rec) = recorder {
        builder = builder.recorder(rec);
    }
    let engine = builder.build().unwrap();
    let params = DbscanParams::new(2.5, 8).unwrap();
    let mut out = Vec::new();
    engine.metric().reset();
    for solver in 0..4 {
        let run = match solver {
            0 => engine.exact(&params).unwrap(),
            1 => engine.covertree(&params).unwrap(),
            2 => engine.approx(&aparams).unwrap(),
            _ => engine.streaming(&aparams).unwrap(),
        };
        out.push((run.clustering.assignments(), engine.metric().reset()));
    }
    out
}

#[test]
fn recorder_is_read_only_under_both_candidate_indexes() {
    for index in [
        CandidateIndex::Grid,
        CandidateIndex::RandomProjection(RpConfig::new(0xd15c_0b33)),
    ] {
        let registry = Registry::new();
        let untraced = trace_indexed(index, None);
        let traced = trace_indexed(index, Some(MetricsRecorder::shared(&registry)));
        assert_eq!(
            untraced, traced,
            "recorder changed behavior under {index:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording a sequence into one histogram equals recording a
    /// split of it into two and merging; snapshots stay
    /// self-consistent with count = len and sum = Σ values.
    #[test]
    fn histogram_split_merge_equivalence(
        values in proptest::collection::vec(0u64..=(1u64 << 48), 0..40),
        split_frac in 0.0f64..1.0,
    ) {
        let whole = Registry::new().histogram("h");
        for v in &values {
            whole.record(*v);
        }
        let split = ((values.len() as f64) * split_frac) as usize;
        let reg = Registry::new();
        let (a, b) = (reg.histogram("a"), reg.histogram("b"));
        for v in &values[..split] {
            a.record(*v);
        }
        for v in &values[split..] {
            b.record(*v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let whole = whole.snapshot();
        prop_assert_eq!(&whole, &merged);
        prop_assert!(whole.is_consistent());
        prop_assert_eq!(whole.count, values.len() as u64);
        prop_assert_eq!(whole.sum, values.iter().sum::<u64>());
        prop_assert_eq!(whole.buckets.len(), HISTOGRAM_BUCKETS);
        // Quantiles are monotone and live within the recorded range's
        // bucket bounds.
        if !values.is_empty() {
            let (p0, p50, p100) = (whole.quantile(0.0), whole.quantile(0.5), whole.quantile(1.0));
            prop_assert!(p0 <= p50 && p50 <= p100);
            let max = *values.iter().max().unwrap();
            prop_assert!(p100 <= max.next_power_of_two().max(1));
        }
    }

    /// Render → parse is the identity on registry snapshots.
    #[test]
    fn exposition_round_trips(
        counter_vals in proptest::collection::vec(0u64..=u64::MAX, 0..6),
        gauge_vals in proptest::collection::vec(0u64..=u64::MAX, 0..4),
        hist_values in proptest::collection::vec(0u64..=(1u64 << 40), 0..24),
    ) {
        let registry = Registry::new();
        for (i, v) in counter_vals.iter().enumerate() {
            registry.counter(&format!("c_{i}")).add(*v);
        }
        for (i, v) in gauge_vals.iter().enumerate() {
            registry.gauge(&format!("g_{i}")).set(*v);
        }
        let h = registry.histogram("latency_micros");
        for v in &hist_values {
            h.record(*v);
        }
        let snap = registry.snapshot();
        let parsed = RegistrySnapshot::parse(&snap.render());
        prop_assert_eq!(parsed.as_ref().ok(), Some(&snap));
    }
}

fn test_client(addr: std::net::SocketAddr) -> Client<Vec<f64>> {
    Client::with_policy(
        addr,
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(25),
            timeout: Duration::from_secs(5),
            seed: 7,
        },
    )
}

/// One raw `GET /metrics` against the hand-rolled responder.
fn http_get_metrics(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("HTTP response has a header/body split");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "expected 200, got: {head}"
    );
    body.to_owned()
}

#[test]
fn metrics_op_and_http_scrape_match_the_in_process_registry() {
    let registry = Registry::new();
    let engine = Arc::new(
        MetricDbscan::builder(dataset(), Euclidean)
            .rbar(ApproxParams::new(EPS, MIN_PTS, RHO).unwrap().rbar())
            .recorder(MetricsRecorder::shared(&registry))
            .build()
            .unwrap(),
    );
    let server = Server::spawn_with_registry(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        registry,
    )
    .unwrap();
    let mut client = test_client(server.local_addr());

    for solver in [
        Solver::Exact,
        Solver::CoverTree,
        Solver::Approx(RHO),
        Solver::Streaming(RHO),
    ] {
        client.query(solver, EPS, MIN_PTS).unwrap();
    }
    client
        .ingest(vec![vec![100.0, 100.0], vec![100.2, 100.1]])
        .unwrap();

    // The wire snapshot is taken *inside* the Metrics request, before
    // that request itself is counted as served and timed — so the
    // later in-process snapshot differs by exactly that one request.
    // (Its latency is recorded after the reply is written; give the
    // worker a moment to get there.)
    let wire = client.metrics().unwrap();
    let expected_timed = wire.histograms["serve_request_micros"].count + 1;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let local = loop {
        let snap = server.metrics_snapshot();
        if snap.histograms["serve_request_micros"].count >= expected_timed
            || std::time::Instant::now() > deadline
        {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(wire.gauges, local.gauges, "gauges must match");
    assert_eq!(
        wire.counters.get("serve_requests_served_total").copied(),
        local
            .counters
            .get("serve_requests_served_total")
            .map(|v| v - 1),
        "local snapshot sees exactly the Metrics request more"
    );
    let mut counters_sans_served = local.counters.clone();
    counters_sans_served.remove("serve_requests_served_total");
    let mut wire_sans_served = wire.counters.clone();
    wire_sans_served.remove("serve_requests_served_total");
    assert_eq!(wire_sans_served, counters_sans_served);
    for (name, h) in &wire.histograms {
        let l = &local.histograms[name];
        if name == "serve_request_micros" {
            assert_eq!(l.count, h.count + 1);
        } else {
            assert!(
                l.count >= h.count,
                "{name} must not shrink between snapshots"
            );
        }
        assert!(h.is_consistent(), "{name} wire snapshot inconsistent");
    }

    // Engine gauges are refreshed at snapshot time.
    assert_eq!(wire.gauges["engine_epoch"], engine.epoch());
    assert_eq!(wire.gauges["engine_num_points"], engine.num_points() as u64);
    assert_eq!(
        wire.gauges["engine_num_centers"],
        engine.num_centers() as u64
    );
    // Serving-tier latency histograms recorded every request so far.
    assert!(wire.histograms["serve_request_micros"].count >= 5);
    assert!(wire.histograms["serve_queue_wait_micros"].count >= 5);
    // Engine phases flowed into the same registry.
    assert!(wire.histograms["mdbscan_phase_step1_micros"].count >= 4);

    // Stats coherence: one reply is internally consistent.
    let stats = client.stats().unwrap();
    assert!(stats.served >= stats.panics);
    assert!(stats.query_p50_micros <= stats.query_p99_micros);
    assert!(stats.queue_wait_p50_micros <= stats.queue_wait_p99_micros);
    assert!(stats.query_p99_micros > 0, "latencies were recorded");

    // The HTTP responder serves the same exposition, and it parses.
    let http = server.serve_metrics_http("127.0.0.1:0").unwrap();
    let body = http_get_metrics(http.local_addr());
    let scraped = RegistrySnapshot::parse(&body).expect("exposition must parse");
    assert!(scraped.histograms.contains_key("serve_request_micros"));
    assert!(scraped.histograms.contains_key("serve_queue_wait_micros"));
    assert_eq!(scraped.gauges["engine_epoch"], engine.epoch());
    assert_eq!(
        scraped.gauges["engine_num_points"],
        engine.num_points() as u64
    );
    assert_eq!(
        scraped.gauges["engine_num_centers"],
        engine.num_centers() as u64
    );
    http.shutdown();
    server.shutdown();
}
