//! Qualitative ordering tests across algorithm families — the
//! load-bearing comparisons behind Tables 3 and 4, asserted as
//! inequalities so they are robust to seeds:
//!
//! * density methods beat center methods on arbitrary shapes;
//! * DBSCAN family rejects planted outliers, center methods cannot;
//! * the streaming engine tracks the offline approximate solver.

use metric_dbscan::baselines::{dp_means, lambda_from_kcenter, optics, Bico, DbStream};
use metric_dbscan::core::{approx_dbscan, ApproxParams, StreamingApproxDbscan};
use metric_dbscan::datagen::{manifold_clusters, moons, ManifoldSpec};
use metric_dbscan::eval::{adjusted_rand_index, fowlkes_mallows, homogeneity};
use metric_dbscan::metric::Euclidean;

#[test]
fn density_beats_centers_on_moons() {
    let ds = moons(1200, 0.06, 0.02, 5);
    let truth = ds.labels().unwrap();
    let dbscan_ari = {
        let c = approx_dbscan(ds.points(), &Euclidean, 0.12, 10, 0.5).unwrap();
        adjusted_rand_index(truth, &c.assignments())
    };
    let dp_ari = {
        let lambda = lambda_from_kcenter(ds.points(), 2, 0);
        let c = dp_means(ds.points(), lambda, 50);
        adjusted_rand_index(truth, &c.assignments())
    };
    let bico_ari = {
        let c = Bico::fit(ds.points(), 2, 200, 1);
        adjusted_rand_index(truth, &c.assignments())
    };
    assert!(
        dbscan_ari > dp_ari + 0.3 && dbscan_ari > bico_ari + 0.3,
        "dbscan {dbscan_ari} vs dp {dp_ari} / bico {bico_ari}"
    );
}

#[test]
fn center_methods_cannot_reject_outliers() {
    let ds = manifold_clusters(
        &ManifoldSpec {
            n: 600,
            ambient_dim: 64,
            intrinsic_dim: 4,
            clusters: 4,
            std: 1.0,
            center_box: 30.0,
            outlier_frac: 0.05,
            ambient_box: 50.0,
        },
        11,
    );
    let truth = ds.labels().unwrap();
    let dbscan = approx_dbscan(ds.points(), &Euclidean, 3.5, 8, 0.5).unwrap();
    let dp = dp_means(ds.points(), lambda_from_kcenter(ds.points(), 4, 0), 50);
    // DBSCAN marks the planted outliers noise; DP-means absorbs them.
    let planted: Vec<usize> = truth
        .iter()
        .enumerate()
        .filter(|(_, &t)| t == -1)
        .map(|(i, _)| i)
        .collect();
    let caught = planted
        .iter()
        .filter(|&&i| dbscan.labels()[i].is_noise())
        .count();
    assert!(
        caught as f64 >= 0.9 * planted.len() as f64,
        "dbscan caught {caught}/{}",
        planted.len()
    );
    assert_eq!(dp.num_noise(), 0, "DP-means has no noise concept");
    // and that costs DP-means homogeneity
    assert!(
        homogeneity(truth, &dbscan.assignments()) >= homogeneity(truth, &dp.assignments()),
        "outlier absorption should not make DP-means more homogeneous"
    );
}

#[test]
fn streaming_tracks_offline_approx() {
    let ds = manifold_clusters(
        &ManifoldSpec {
            n: 1500,
            ambient_dim: 32,
            intrinsic_dim: 4,
            clusters: 5,
            std: 1.0,
            center_box: 35.0,
            outlier_frac: 0.01,
            ambient_box: 50.0,
        },
        23,
    );
    let truth = ds.labels().unwrap();
    let offline = approx_dbscan(ds.points(), &Euclidean, 4.0, 10, 0.5).unwrap();
    let params = ApproxParams::new(4.0, 10, 0.5).unwrap();
    let (streaming, _) =
        StreamingApproxDbscan::run(&Euclidean, &params, || ds.points().iter().cloned()).unwrap();
    let off_ari = adjusted_rand_index(truth, &offline.assignments());
    let str_ari = adjusted_rand_index(truth, &streaming.assignments());
    assert!(
        (off_ari - str_ari).abs() < 0.1,
        "offline {off_ari} vs streaming {str_ari}"
    );
    assert!(str_ari > 0.9);
    // and it beats DBStream at default-ish knobs on this data
    let dbs = DbStream::fit(ds.points(), 4.0, 0.0005, 0.1);
    let dbs_fm = fowlkes_mallows(truth, &dbs.assignments());
    let our_fm = fowlkes_mallows(truth, &streaming.assignments());
    assert!(
        our_fm >= dbs_fm - 0.05,
        "ours {our_fm} vs dbstream {dbs_fm}"
    );
}

#[test]
fn optics_extraction_is_a_valid_dbscan_oracle() {
    let ds = moons(500, 0.06, 0.02, 9);
    let ordering = optics(ds.points(), &Euclidean, 0.3, 8);
    for eps in [0.1, 0.15, 0.3] {
        let from_optics = ordering.extract_dbscan(eps);
        let direct = metric_dbscan::core::exact_dbscan(ds.points(), &Euclidean, eps, 8).unwrap();
        assert_eq!(
            from_optics.num_clusters(),
            direct.num_clusters(),
            "eps={eps}"
        );
        for i in 0..ds.len() {
            assert_eq!(
                from_optics.labels()[i].is_core(),
                direct.labels()[i].is_core(),
                "eps={eps} i={i}"
            );
        }
    }
}
