//! The pruning contract, certified end to end (PR 3): for **every**
//! solver — exact (Algorithm 1 and cover-tree pipelines), ρ-approximate,
//! and the streaming engine — the cluster labels produced with
//! net-anchored triangle-inequality pruning **on** are byte-identical to
//! the pruning-**off** run, for every thread count, on Euclidean blob
//! data and on Levenshtein string data alike; on clustered data the
//! bounds must actually fire (`bound_rejects > 0`). A `CountingMetric`
//! regression on the Fig.-3 Moons dataset pins the headline claim:
//! Step 1 + adjacency spend ≥ 30 % fewer distance evaluations with
//! pruning on.

use metric_dbscan::core::{
    exact_dbscan_covertree_with, ApproxParams, DbscanParams, ExactConfig, MetricDbscan,
    ParallelConfig, PointLabel, StreamingApproxDbscan,
};
use metric_dbscan::datagen::{blobs, moons, string_clusters, BlobSpec, StringSpec};
use metric_dbscan::metric::{BatchMetric, Euclidean, Levenshtein, PruneStats, PruningConfig};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Exact + approx labels and the run's pruning ledger at a given
/// pruning setting and thread count, over a fresh engine (so no cache
/// can leak state between the two settings).
#[allow(clippy::type_complexity)]
fn solve_both<P: Sync + Clone + Send, M: BatchMetric<P> + Sync>(
    pts: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    rho: f64,
    threads: usize,
    pruning: PruningConfig,
) -> (Vec<PointLabel>, Vec<PointLabel>, PruneStats, PruneStats) {
    let parallel = ParallelConfig::new(threads);
    let aparams = ApproxParams::new(eps, min_pts, rho).expect("approx params");
    let engine = MetricDbscan::builder(pts.to_vec(), metric)
        .rbar(aparams.rbar())
        .parallel(parallel)
        .pruning(pruning)
        .build()
        .expect("engine");
    let params = DbscanParams::new(eps, min_pts).expect("params");
    let exact = engine.exact(&params).expect("exact");
    let approx = engine.approx(&aparams).expect("approx");
    (
        exact.clustering.labels().to_vec(),
        approx.clustering.labels().to_vec(),
        exact.report.pruning,
        approx.report.pruning,
    )
}

fn covertree_labels<P: Sync + Clone, M: BatchMetric<P> + Sync>(
    pts: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    threads: usize,
    pruning: PruningConfig,
) -> Vec<PointLabel> {
    let cfg = ExactConfig {
        parallel: ParallelConfig::new(threads),
        pruning,
        ..ExactConfig::default()
    };
    exact_dbscan_covertree_with(pts, metric, eps, min_pts, &cfg)
        .expect("covertree pipeline")
        .0
        .labels()
        .to_vec()
}

fn streaming_labels<P: Sync + Clone, M: BatchMetric<P> + Sync>(
    pts: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    rho: f64,
    threads: usize,
    pruning: PruningConfig,
) -> (Vec<PointLabel>, PruneStats) {
    let params = ApproxParams::new(eps, min_pts, rho).expect("params");
    let (c, engine) = StreamingApproxDbscan::run_pruned(
        metric,
        &params,
        &ParallelConfig::new(threads),
        &pruning,
        || pts.iter().cloned(),
    )
    .expect("stream");
    (c.labels().to_vec(), engine.stats().pruning)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Euclidean blobs: all four solvers are pruning-invariant at every
    /// thread count, and the bounds fire on clustered data.
    #[test]
    fn blobs_pruning_invariant(seed in 0u64..1000, eps_scale in 0.6f64..1.6) {
        let pts = blobs(
            &BlobSpec {
                n: 500,
                dim: 2,
                clusters: 3,
                std: 1.0,
                center_box: 15.0,
                outlier_frac: 0.05,
            },
            seed,
        )
        .into_parts()
        .0;
        let eps = eps_scale;
        let (min_pts, rho) = (8usize, 0.5);
        let on = PruningConfig::default();
        let off = PruningConfig::off();
        let (exact_off, approx_off, ps_off, _) =
            solve_both(&pts, &Euclidean, eps, min_pts, rho, 1, off);
        prop_assert_eq!(ps_off, PruneStats::default(), "off must report zeros");
        let (stream_off, sps_off) =
            streaming_labels(&pts, &Euclidean, eps, min_pts, rho, 1, off);
        prop_assert_eq!(sps_off, PruneStats::default());
        let tree_off = covertree_labels(&pts, &Euclidean, eps, min_pts, 1, off);
        for threads in THREAD_COUNTS {
            let (exact_on, approx_on, ps_on, aps_on) =
                solve_both(&pts, &Euclidean, eps, min_pts, rho, threads, on);
            prop_assert_eq!(&exact_off, &exact_on, "exact diverged at {} threads", threads);
            prop_assert_eq!(&approx_off, &approx_on, "approx diverged at {} threads", threads);
            prop_assert!(
                ps_on.bound_rejects > 0 || aps_on.bound_rejects > 0,
                "bounds never fired on clustered data (exact {:?}, approx {:?})",
                ps_on,
                aps_on
            );
            let (stream_on, _) =
                streaming_labels(&pts, &Euclidean, eps, min_pts, rho, threads, on);
            prop_assert_eq!(&stream_off, &stream_on, "streaming diverged at {} threads", threads);
            let tree_on = covertree_labels(&pts, &Euclidean, eps, min_pts, threads, on);
            prop_assert_eq!(&tree_off, &tree_on, "covertree diverged at {} threads", threads);
        }
    }

    /// Levenshtein string clusters: same contract under a discrete,
    /// expensive metric (where the batched kernel also kicks in).
    #[test]
    fn strings_pruning_invariant(seed in 0u64..1000) {
        let words = string_clusters(
            &StringSpec {
                n: 120,
                clusters: 3,
                seed_len: 12,
                max_edits: 2,
                alphabet: b"abcd",
                outlier_frac: 0.05,
            },
            seed,
        )
        .into_parts()
        .0;
        let (eps, min_pts, rho) = (4.0, 4usize, 0.5);
        let on = PruningConfig::default();
        let off = PruningConfig::off();
        let (exact_off, approx_off, _, _) =
            solve_both(&words, &Levenshtein, eps, min_pts, rho, 1, off);
        let (stream_off, _) = streaming_labels(&words, &Levenshtein, eps, min_pts, rho, 1, off);
        let tree_off = covertree_labels(&words, &Levenshtein, eps, min_pts, 1, off);
        for threads in THREAD_COUNTS {
            let (exact_on, approx_on, _, _) =
                solve_both(&words, &Levenshtein, eps, min_pts, rho, threads, on);
            prop_assert_eq!(&exact_off, &exact_on, "exact diverged at {} threads", threads);
            prop_assert_eq!(&approx_off, &approx_on, "approx diverged at {} threads", threads);
            let (stream_on, _) =
                streaming_labels(&words, &Levenshtein, eps, min_pts, rho, threads, on);
            prop_assert_eq!(&stream_off, &stream_on, "streaming diverged at {} threads", threads);
            let tree_on = covertree_labels(&words, &Levenshtein, eps, min_pts, threads, on);
            prop_assert_eq!(&tree_off, &tree_on, "covertree diverged at {} threads", threads);
        }
    }
}

/// The headline regression on the Fig.-3 Moons stand-in (the small
/// low-dimensional dataset of the runtime panel): with pruning on,
/// Step 1 + adjacency must spend ≥ 30 % fewer distance evaluations, the
/// total must strictly drop, and the labels must not move.
#[test]
fn fig3_moons_step1_and_adjacency_evals_drop_30_percent() {
    let pts = moons(2000, 0.06, 0.02, 42).into_parts().0;
    let (eps, min_pts) = (0.12, 10usize);
    let solve = |pruning: PruningConfig| {
        // cache_capacity(0): every run recomputes everything, so the
        // counters compare like for like.
        let engine = MetricDbscan::builder(pts.clone(), Euclidean)
            .rbar(eps / 2.0)
            .pruning(pruning)
            .cache_capacity(0)
            .build()
            .expect("engine");
        let cfg = ExactConfig {
            parallel: engine.parallel(),
            pruning,
            count_distance_evals: true,
            ..ExactConfig::default()
        };
        let run = engine
            .exact_with(&DbscanParams::new(eps, min_pts).expect("params"), &cfg)
            .expect("exact");
        let stats = *run.report.exact_stats().expect("exact stats");
        (run.clustering, stats)
    };
    let (labels_off, off) = solve(PruningConfig::off());
    let (labels_on, on) = solve(PruningConfig::default());
    assert_eq!(labels_off, labels_on, "pruning moved labels");

    let front_off = off.adjacency_evals + off.label_evals;
    let front_on = on.adjacency_evals + on.label_evals;
    assert!(front_off > 0, "counting must be live");
    assert!(
        (front_on as f64) <= 0.7 * front_off as f64,
        "Step-1 + adjacency evals only dropped from {front_off} to {front_on} \
         (need ≥ 30 %); stats on: {on:?}"
    );
    assert!(
        on.label_evals < off.label_evals,
        "Step-1 evals must strictly drop ({} vs {})",
        on.label_evals,
        off.label_evals
    );
    assert!(
        on.distance_evals < off.distance_evals,
        "total evals must strictly drop ({} vs {})",
        on.distance_evals,
        off.distance_evals
    );
    assert!(on.pruning.bound_rejects > 0, "rejects must fire: {on:?}");
    assert!(on.pruning.bound_accepts > 0, "accepts must fire: {on:?}");
}
