//! The dynamic-engine contract (PR 4).
//!
//! 1. **Ingest determinism**: an engine built with the radius-guided
//!    (first-fit) net over a prefix and grown by `ingest`/`ingest_one`
//!    must produce labels **bit-identical** to a fresh radius-guided
//!    engine over the same full sequence — for all four solvers, two
//!    metric families, two thread counts, pruning on and off, and at
//!    every intermediate epoch.
//! 2. **Snapshot isolation**: a snapshot pinned before an ingest keeps
//!    answering byte-identically from its own epoch while writers
//!    publish new ones, including under concurrent interleavings.
//! 3. **Epoch-keyed caches**: cache *hits* never cross epochs (an
//!    epoch-`e` query can only hit epoch-`e` artifacts); cross-epoch
//!    reuse happens only as incremental *upgrades*.

use std::sync::Arc;

use metric_dbscan::core::{
    ApproxParams, DbscanParams, MetricDbscan, NetStrategy, ParallelConfig, PointLabel,
};
use metric_dbscan::datagen::{blobs, string_clusters, BlobSpec, StringSpec};
use metric_dbscan::metric::{BatchMetric, Euclidean, Levenshtein, PruningConfig};

fn vector_points() -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n: 240,
            dim: 2,
            clusters: 3,
            std: 0.8,
            center_box: 20.0,
            outlier_frac: 0.1,
        },
        7,
    )
    .into_parts()
    .0
}

fn string_points() -> Vec<String> {
    string_clusters(
        &StringSpec {
            n: 80,
            clusters: 3,
            seed_len: 12,
            max_edits: 2,
            alphabet: b"acgt",
            outlier_frac: 0.1,
        },
        11,
    )
    .into_parts()
    .0
}

/// All four solvers' labels at the engine's current epoch.
fn all_solver_labels<P: Clone + Sync, M: BatchMetric<P>>(
    engine: &MetricDbscan<P, M>,
    params: &DbscanParams,
    aparams: &ApproxParams,
) -> [Vec<PointLabel>; 4] {
    [
        engine.exact(params).unwrap().clustering.labels().to_vec(),
        engine.approx(aparams).unwrap().clustering.labels().to_vec(),
        engine
            .covertree(params)
            .unwrap()
            .clustering
            .labels()
            .to_vec(),
        engine
            .streaming(aparams)
            .unwrap()
            .clustering
            .labels()
            .to_vec(),
    ]
}

/// Builds a radius-guided engine over `points` with the given knobs.
fn build<P: Clone + Sync, M: BatchMetric<P>>(
    points: Vec<P>,
    metric: M,
    rbar: f64,
    threads: usize,
    pruning: PruningConfig,
) -> MetricDbscan<P, M> {
    MetricDbscan::builder(points, metric)
        .rbar(rbar)
        .net_strategy(NetStrategy::RadiusGuided)
        .parallel(ParallelConfig::new(threads))
        .pruning(pruning)
        .build()
        .unwrap()
}

/// The acceptance matrix: ingest-then-query equals a fresh radius-guided
/// build over the same sequence, at every epoch, for every solver.
fn assert_ingest_matches_fresh<P, M>(points: Vec<P>, metric: M, rbar: f64, eps: f64, min_pts: usize)
where
    P: Clone + Sync + PartialEq + std::fmt::Debug,
    M: BatchMetric<P> + Clone,
{
    let params = DbscanParams::new(eps, min_pts).unwrap();
    // ρ = 1 keeps one r̄ valid for exact (r̄ ≤ ε/2) and approx (r̄ ≤ ρε/2).
    let aparams = ApproxParams::new(eps, min_pts, 1.0).unwrap();
    let third = points.len() / 3;
    for threads in [1usize, 4] {
        for pruning in [PruningConfig::default(), PruningConfig::off()] {
            let ctx = format!("threads={threads} pruning={}", pruning.enabled);
            let dynamic = build(
                points[..third].to_vec(),
                metric.clone(),
                rbar,
                threads,
                pruning,
            );
            // Warm epoch-0 caches so the post-ingest queries exercise the
            // incremental upgrade paths, then check the prefix already
            // matches a fresh build over the same prefix.
            let stage0 = all_solver_labels(&dynamic, &params, &aparams);
            let fresh0 = build(
                points[..third].to_vec(),
                metric.clone(),
                rbar,
                threads,
                pruning,
            );
            assert_eq!(
                stage0,
                all_solver_labels(&fresh0, &params, &aparams),
                "{ctx}: prefix mismatch"
            );

            // Grow: one batch, two singles, then the rest.
            dynamic.ingest(points[third..2 * third].to_vec()).unwrap();
            let _ = all_solver_labels(&dynamic, &params, &aparams); // mid-epoch warmup
            dynamic.ingest_one(points[2 * third].clone()).unwrap();
            dynamic.ingest_one(points[2 * third + 1].clone()).unwrap();
            dynamic.ingest(points[2 * third + 2..].to_vec()).unwrap();
            assert_eq!(dynamic.epoch(), 4, "{ctx}");
            assert_eq!(dynamic.num_points(), points.len(), "{ctx}");

            let fresh = build(points.clone(), metric.clone(), rbar, threads, pruning);
            // The maintained net is the one a full one-shot pass builds...
            assert_eq!(
                dynamic.net_arc().centers,
                fresh.net_arc().centers,
                "{ctx}: net diverged"
            );
            // ...and so are all four solvers' labels, bit for bit.
            let grown = all_solver_labels(&dynamic, &params, &aparams);
            let reference = all_solver_labels(&fresh, &params, &aparams);
            for (solver, (a, b)) in ["exact", "approx", "covertree", "streaming"]
                .iter()
                .zip(grown.iter().zip(reference.iter()))
            {
                assert_eq!(a, b, "{ctx}: {solver} labels diverged after ingest");
            }
            // The upgrade paths actually fired (adjacency extension,
            // incremental Step 1, grown fragment/whole-input trees).
            assert!(
                dynamic.cache_stats().upgrades > 0,
                "{ctx}: no incremental reuse recorded"
            );
        }
    }
}

#[test]
fn ingest_matches_fresh_build_vectors() {
    assert_ingest_matches_fresh(vector_points(), Euclidean, 0.5, 1.0, 5);
}

#[test]
fn ingest_matches_fresh_build_strings() {
    assert_ingest_matches_fresh(string_points(), Levenshtein, 1.0, 2.0, 3);
}

/// Readers pinned to old snapshots must see byte-identical results
/// across repeated queries while a writer keeps publishing epochs.
#[test]
fn concurrent_readers_on_old_snapshots_are_unaffected_by_ingest() {
    let points = vector_points();
    let quarter = points.len() / 4;
    let engine = Arc::new(build(
        points[..quarter].to_vec(),
        Euclidean,
        0.5,
        2,
        PruningConfig::default(),
    ));
    let params = DbscanParams::new(1.0, 5).unwrap();
    let aparams = ApproxParams::new(1.0, 5, 1.0).unwrap();

    std::thread::scope(|scope| {
        // Writer: three more batches, one epoch each.
        let writer_engine = Arc::clone(&engine);
        let writer_points = &points;
        let writer = scope.spawn(move || {
            for b in 1..4 {
                let batch = writer_points[b * quarter..(b + 1) * quarter].to_vec();
                let report = writer_engine.ingest(batch).unwrap();
                assert_eq!(report.epoch, b as u64);
            }
        });
        // Readers: pin a snapshot, query it repeatedly, and require
        // byte-stability no matter what the writer publishes meanwhile.
        let mut readers = Vec::new();
        for r in 0..4 {
            let reader_engine = Arc::clone(&engine);
            readers.push(scope.spawn(move || {
                let snap = reader_engine.snapshot();
                let epoch = snap.epoch();
                let n = snap.num_points();
                let first_exact = snap.exact(&params).unwrap();
                let first_approx = snap.approx(&aparams).unwrap();
                for _ in 0..3 {
                    let again = snap.exact(&params).unwrap();
                    assert_eq!(again.report.epoch, epoch, "reader {r}");
                    assert_eq!(
                        again.clustering, first_exact.clustering,
                        "reader {r}: epoch-{epoch} exact result drifted"
                    );
                    assert_eq!(
                        snap.approx(&aparams).unwrap().clustering,
                        first_approx.clustering,
                        "reader {r}: epoch-{epoch} approx result drifted"
                    );
                    assert_eq!(snap.num_points(), n, "reader {r}");
                }
                (epoch, n, first_exact.clustering)
            }));
        }
        writer.join().unwrap();
        // Every pinned epoch must equal a fresh build over its prefix.
        for reader in readers {
            let (_, n, labels) = reader.join().unwrap();
            let fresh = build(
                points[..n].to_vec(),
                Euclidean,
                0.5,
                2,
                PruningConfig::default(),
            );
            assert_eq!(labels, fresh.exact(&params).unwrap().clustering);
        }
    });

    // And the final engine equals the full fresh build.
    assert_eq!(engine.epoch(), 3);
    let fresh = build(points.clone(), Euclidean, 0.5, 2, PruningConfig::default());
    assert_eq!(
        engine.exact(&params).unwrap().clustering,
        fresh.exact(&params).unwrap().clustering
    );
}

/// Cache hits must never cross epochs; cross-epoch reuse shows up only
/// in the `upgrades` counter.
#[test]
fn cache_hit_counters_never_cross_epochs() {
    let points = vector_points();
    let half = points.len() / 2;
    let engine = build(
        points[..half].to_vec(),
        Euclidean,
        0.5,
        1,
        PruningConfig::default(),
    );
    let params = DbscanParams::new(1.0, 5).unwrap();

    let snap0 = engine.snapshot();
    let cold = snap0.exact(&params).unwrap();
    assert!(!cold.report.cache_hit);
    assert!(snap0.exact(&params).unwrap().report.cache_hit);
    let hits_epoch0 = engine.cache_stats().hits;

    engine.ingest(points[half..].to_vec()).unwrap();
    let post = engine.exact(&params).unwrap();
    assert_eq!(post.report.epoch, 1);
    assert!(
        !post.report.cache_hit,
        "epoch-1 query must not hit epoch-0 artifacts"
    );
    let stats = engine.cache_stats();
    assert!(
        stats.upgrades > 0,
        "expected an incremental upgrade instead"
    );
    assert_eq!(
        stats.hits, hits_epoch0,
        "ingest must not mint cross-epoch hits"
    );

    // The pinned epoch-0 snapshot still hits its own artifacts...
    let old = snap0.exact(&params).unwrap();
    assert!(old.report.cache_hit);
    assert_eq!(old.clustering, cold.clustering);
    // ...and a repeat at epoch 1 hits the (freshly upgraded) epoch-1 entry.
    let warm = engine.exact(&params).unwrap();
    assert!(warm.report.cache_hit);
    assert_eq!(warm.clustering, post.clustering);
}

/// The component-aware Step-2 batch planner: multi-thread runs must not
/// test more BCP pairs than the sequential interleaving.
#[test]
fn parallel_bcp_tests_never_exceed_sequential() {
    let points = vector_points();
    let params = DbscanParams::new(1.0, 5).unwrap();
    let mut counts = Vec::new();
    for threads in [1usize, 4, 8] {
        let engine = build(
            points.clone(),
            Euclidean,
            0.5,
            threads,
            // Pruning off so every candidate goes through a real BCP test.
            PruningConfig::off(),
        );
        let run = engine.exact(&params).unwrap();
        counts.push(run.report.exact_stats().unwrap().bcp_tests);
    }
    for (i, &c) in counts.iter().enumerate().skip(1) {
        assert!(
            c <= counts[0],
            "threads run {i} tested {c} BCP pairs > sequential {}",
            counts[0]
        );
    }
}

/// Lazy epoch publication (PR 5): `ingest`/`ingest_one` defer the O(n)
/// store/cover flatten to the first post-batch read, so point-at-a-time
/// feeding is O(n) total in copies instead of O(n²) — with the
/// determinism contract untouched.
#[test]
fn point_at_a_time_feeding_publishes_lazily_and_stays_deterministic() {
    let points = vector_points();
    let (seed, rest) = points.split_at(40);
    let engine = build(seed.to_vec(), Euclidean, 0.5, 1, PruningConfig::default());
    assert_eq!(engine.publish_count(), 0, "the build itself is epoch 0");

    // Feed one point at a time; counter reads must not force flattens.
    for (i, p) in rest.iter().enumerate() {
        let report = engine.ingest_one(p.clone()).unwrap();
        assert_eq!(report.epoch, i as u64 + 1);
        assert_eq!(engine.epoch(), i as u64 + 1);
        assert_eq!(engine.num_points(), seed.len() + i + 1);
    }
    assert_eq!(
        engine.publish_count(),
        0,
        "no read happened yet, so no O(n) flatten may have been paid"
    );

    // The first real read publishes exactly once, no matter how many
    // batches piled up...
    let params = DbscanParams::new(1.0, 5).unwrap();
    let lazy = engine.exact(&params).unwrap();
    assert_eq!(engine.publish_count(), 1);
    assert_eq!(lazy.report.epoch, rest.len() as u64);

    // ...and the published state is bit-identical to a fresh
    // radius-guided build over the full sequence (the PR-4 contract).
    let fresh = build(points.clone(), Euclidean, 0.5, 1, PruningConfig::default());
    assert_eq!(engine.net_arc().centers, fresh.net_arc().centers);
    assert_eq!(
        lazy.clustering,
        fresh.exact(&params).unwrap().clustering,
        "lazy publication must not change what is published"
    );

    // Repeated reads at the same epoch never republish; a later batch
    // republishes once on its next read.
    engine.exact(&params).unwrap();
    assert_eq!(engine.publish_count(), 1);
    engine.ingest(Vec::<Vec<f64>>::new()).unwrap();
    assert_eq!(engine.publish_count(), 1, "empty batches publish nothing");
    engine.ingest_one(points[0].clone()).unwrap();
    assert_eq!(engine.publish_count(), 1);
    engine.snapshot();
    assert_eq!(engine.publish_count(), 2);
}
