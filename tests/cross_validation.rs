//! Cross-crate validation: every exact solver in the workspace — the
//! paper's accelerated pipeline (§3.1), its cover-tree variant (§3.2),
//! Gan–Tao's grid (Euclidean), and DYW — must produce the *same* result
//! as the original DBSCAN of Ester et al. on the same data. This is the
//! repository's strongest end-to-end exactness statement.

use metric_dbscan::baselines::{dyw_dbscan, grid_dbscan_exact, original_dbscan};
use metric_dbscan::core::{exact_dbscan, exact_dbscan_covertree, Clustering};
use metric_dbscan::datagen::{blobs, cluto_like, moons, string_clusters, BlobSpec, StringSpec};
use metric_dbscan::metric::{Euclidean, Levenshtein, Metric};

/// Cores, noise set, and the core partition must agree (borders may
/// tie-break differently across implementations; see paper footnote 1).
fn assert_same_dbscan<P, M: Metric<P>>(
    tag: &str,
    points: &[P],
    _metric: &M,
    a: &Clustering,
    b: &Clustering,
) {
    assert_eq!(a.len(), b.len(), "{tag}: length");
    assert_eq!(a.num_clusters(), b.num_clusters(), "{tag}: cluster count");
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for i in 0..points.len() {
        assert_eq!(
            a.labels()[i].is_core(),
            b.labels()[i].is_core(),
            "{tag}: core flag at {i}"
        );
        assert_eq!(
            a.labels()[i].is_noise(),
            b.labels()[i].is_noise(),
            "{tag}: noise flag at {i}"
        );
        if a.labels()[i].is_core() {
            let (x, y) = (a.cluster_of(i).unwrap(), b.cluster_of(i).unwrap());
            assert_eq!(*fwd.entry(x).or_insert(y), y, "{tag}: partition at {i}");
            assert_eq!(*bwd.entry(y).or_insert(x), x, "{tag}: partition at {i}");
        }
    }
}

#[test]
fn all_exact_solvers_agree_on_moons() {
    let ds = moons(600, 0.06, 0.03, 11);
    let pts = ds.points();
    for eps in [0.1, 0.15, 0.25] {
        let reference = original_dbscan(pts, &Euclidean, eps, 8);
        let ours = exact_dbscan(pts, &Euclidean, eps, 8).unwrap();
        assert_same_dbscan("ours", pts, &Euclidean, &ours, &reference);
        let (tree, _) = exact_dbscan_covertree(pts, &Euclidean, eps, 8).unwrap();
        assert_same_dbscan("covertree", pts, &Euclidean, &tree, &reference);
        let grid = grid_dbscan_exact(pts, eps, 8);
        assert_same_dbscan("grid", pts, &Euclidean, &grid, &reference);
        let dyw = dyw_dbscan(pts, &Euclidean, eps, 8, 20, 1.0, pts.len(), 5);
        assert_same_dbscan("dyw", pts, &Euclidean, &dyw, &reference);
    }
}

#[test]
fn all_exact_solvers_agree_on_cluto_shapes() {
    let ds = cluto_like(800, 0.08, 23);
    let pts = ds.points();
    let eps = 0.45;
    let reference = original_dbscan(pts, &Euclidean, eps, 10);
    let ours = exact_dbscan(pts, &Euclidean, eps, 10).unwrap();
    assert_same_dbscan("ours", pts, &Euclidean, &ours, &reference);
    let grid = grid_dbscan_exact(pts, eps, 10);
    assert_same_dbscan("grid", pts, &Euclidean, &grid, &reference);
}

#[test]
fn metric_solvers_agree_on_medium_dim_blobs() {
    let ds = blobs(
        &BlobSpec {
            n: 400,
            dim: 41,
            clusters: 3,
            std: 1.0,
            center_box: 30.0,
            outlier_frac: 0.02,
        },
        31,
    );
    let pts = ds.points();
    let eps = 9.5;
    let reference = original_dbscan(pts, &Euclidean, eps, 10);
    let ours = exact_dbscan(pts, &Euclidean, eps, 10).unwrap();
    assert_same_dbscan("ours", pts, &Euclidean, &ours, &reference);
    let dyw = dyw_dbscan(pts, &Euclidean, eps, 10, 8, 1.0, pts.len(), 5);
    assert_same_dbscan("dyw", pts, &Euclidean, &dyw, &reference);
}

#[test]
fn metric_solvers_agree_on_edit_distance_text() {
    let ds = string_clusters(
        &StringSpec {
            n: 150,
            clusters: 5,
            seed_len: 18,
            max_edits: 2,
            outlier_frac: 0.05,
            ..Default::default()
        },
        17,
    );
    let pts = ds.points();
    for eps in [3.0, 5.0] {
        let reference = original_dbscan(pts, &Levenshtein, eps, 5);
        let ours = exact_dbscan(pts, &Levenshtein, eps, 5).unwrap();
        assert_same_dbscan("ours-text", pts, &Levenshtein, &ours, &reference);
        let (tree, _) = exact_dbscan_covertree(pts, &Levenshtein, eps, 5).unwrap();
        assert_same_dbscan("covertree-text", pts, &Levenshtein, &tree, &reference);
        let dyw = dyw_dbscan(pts, &Levenshtein, eps, 5, 10, 1.0, pts.len(), 3);
        assert_same_dbscan("dyw-text", pts, &Levenshtein, &dyw, &reference);
    }
}
