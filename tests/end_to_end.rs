//! End-to-end behavioral tests across the whole stack: generators →
//! solvers → quality metrics, exercising the claims the README makes.

use metric_dbscan::core::{
    approx_dbscan, exact_dbscan, ApproxParams, DbscanParams, MetricDbscan, StreamingApproxDbscan,
};
use metric_dbscan::datagen::{
    banana, manifold_clusters, moons, string_clusters, DriftingStream, ManifoldSpec, StringSpec,
};
use metric_dbscan::eval::{adjusted_mutual_info, adjusted_rand_index};
use metric_dbscan::metric::{CountingMetric, Euclidean, Levenshtein};

#[test]
fn moons_are_recovered_with_high_quality() {
    let ds = moons(1500, 0.06, 0.02, 42);
    let truth = ds.labels().unwrap();
    let c = exact_dbscan(ds.points(), &Euclidean, 0.12, 10).unwrap();
    assert_eq!(c.num_clusters(), 2);
    let pred = c.assignments();
    assert!(adjusted_rand_index(truth, &pred) > 0.95);
    assert!(adjusted_mutual_info(truth, &pred) > 0.9);
}

#[test]
fn banana_shape_defeats_centers_but_not_dbscan() {
    let ds = banana(1200, 0.03, 7);
    let truth = ds.labels().unwrap();
    let c = exact_dbscan(ds.points(), &Euclidean, 0.45, 10).unwrap();
    let ari_dbscan = adjusted_rand_index(truth, &c.assignments());
    let lambda = metric_dbscan::baselines::lambda_from_kcenter(ds.points(), 2, 0);
    let dp = metric_dbscan::baselines::dp_means(ds.points(), lambda, 50);
    let ari_dp = adjusted_rand_index(truth, &dp.assignments());
    assert!(
        ari_dbscan > ari_dp + 0.2,
        "density {ari_dbscan} should beat centers {ari_dp} on the banana"
    );
}

#[test]
fn high_dimensional_outliers_are_rejected() {
    let ds = manifold_clusters(
        &ManifoldSpec {
            n: 1200,
            ambient_dim: 512,
            intrinsic_dim: 5,
            clusters: 6,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.03,
            ambient_box: 60.0,
        },
        5,
    );
    let truth = ds.labels().unwrap();
    let c = exact_dbscan(ds.points(), &Euclidean, 4.0, 10).unwrap();
    // every planted ambient outlier ends up noise
    for (i, &t) in truth.iter().enumerate() {
        if t == -1 {
            assert!(c.labels()[i].is_noise(), "outlier {i} not rejected");
        }
    }
    assert!(adjusted_rand_index(truth, &c.assignments()) > 0.95);
}

#[test]
fn text_pipeline_counts_few_distance_evaluations() {
    // large enough that the n·|E| linear term separates from n²
    let ds = string_clusters(
        &StringSpec {
            n: 700,
            clusters: 6,
            seed_len: 20,
            max_edits: 2,
            outlier_frac: 0.03,
            ..Default::default()
        },
        3,
    );
    let n = ds.len() as u64;
    let counting = CountingMetric::new(Levenshtein);
    let c = exact_dbscan(ds.points(), &counting, 5.0, 5).unwrap();
    assert_eq!(c.num_clusters(), 6);
    assert!(
        counting.count() < n * n / 2,
        "expected sub-quadratic distance evals, got {} (n² = {})",
        counting.count(),
        n * n
    );
}

#[test]
fn engine_reuse_serves_a_parameter_grid() {
    let ds = moons(800, 0.06, 0.02, 9);
    let pts = ds.points();
    let engine = MetricDbscan::builder(pts.to_vec(), Euclidean)
        .rbar(0.05)
        .build()
        .unwrap();
    for eps in [0.1, 0.12, 0.15, 0.2] {
        for min_pts in [5, 10, 15] {
            let reused = engine
                .exact(&DbscanParams::new(eps, min_pts).unwrap())
                .unwrap()
                .clustering;
            let fresh = exact_dbscan(pts, &Euclidean, eps, min_pts).unwrap();
            assert_eq!(
                reused.num_clusters(),
                fresh.num_clusters(),
                "eps={eps} minpts={min_pts}"
            );
            for i in 0..pts.len() {
                assert_eq!(
                    reused.labels()[i].is_core(),
                    fresh.labels()[i].is_core(),
                    "eps={eps} minpts={min_pts} i={i}"
                );
            }
        }
    }
    // The grid re-probed: every (ε, MinPts) is now resident in the LRU
    // (12 entries ≤ the default capacity), so the sweep replays from it.
    for eps in [0.1, 0.12, 0.15, 0.2] {
        for min_pts in [5, 10, 15] {
            let run = engine
                .exact(&DbscanParams::new(eps, min_pts).unwrap())
                .unwrap();
            assert!(run.report.cache_hit, "eps={eps} minpts={min_pts}");
        }
    }
}

#[test]
fn approx_quality_degrades_gracefully_with_rho() {
    let ds = manifold_clusters(
        &ManifoldSpec {
            n: 900,
            ambient_dim: 128,
            intrinsic_dim: 5,
            clusters: 8,
            std: 1.0,
            center_box: 40.0,
            outlier_frac: 0.01,
            ambient_box: 60.0,
        },
        13,
    );
    let truth = ds.labels().unwrap();
    // fragmenting ε, as in Fig. 4
    let eps = 3.0;
    let exact_ari = {
        let c = exact_dbscan(ds.points(), &Euclidean, eps, 10).unwrap();
        adjusted_rand_index(truth, &c.assignments())
    };
    for rho in [0.1, 0.5, 1.0, 2.0] {
        let c = approx_dbscan(ds.points(), &Euclidean, eps, 10, rho).unwrap();
        let ari = adjusted_rand_index(truth, &c.assignments());
        // never catastrophically worse than exact at the same ε
        assert!(
            ari > exact_ari - 0.3,
            "rho={rho}: ARI {ari} vs exact {exact_ari}"
        );
    }
}

#[test]
fn streaming_engine_matches_quality_with_bounded_memory() {
    let stream = DriftingStream {
        n: 8000,
        dim: 16,
        intrinsic_dim: 4,
        sources: 4,
        std: 0.5,
        drift: 0.0005,
        outlier_prob: 0.01,
        boxsize: 60.0,
        seed: 21,
    };
    let params = ApproxParams::new(2.0, 10, 0.5).unwrap();
    let (c, engine) = StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter()).unwrap();
    assert_eq!(c.num_clusters(), 4);
    let truth = stream.labels();
    assert!(adjusted_rand_index(&truth, &c.assignments()) > 0.9);
    let fp = engine.footprint();
    assert!(
        fp.stored_points() < stream.n / 4,
        "memory {} of {}",
        fp.stored_points(),
        stream.n
    );
}
