//! The engine's concurrency contract (PR 2): one `Arc<MetricDbscan>`
//! shared across 8 threads running mixed exact/approx parameter sweeps
//! produces labels **bit-identical** to a single-thread baseline — the
//! cross-thread extension of the `parallel_determinism.rs` invariant —
//! and repeated `(ε, MinPts)` probes hit the fragment-tree LRU.

use std::sync::Arc;

use metric_dbscan::core::{ApproxParams, DbscanParams, MetricDbscan, ParallelConfig, PointLabel};
use metric_dbscan::datagen::{blobs, string_clusters, BlobSpec, StringSpec};
use metric_dbscan::metric::{BatchMetric, Euclidean, Levenshtein};

const WORKERS: usize = 8;

/// The mixed sweep each worker replays: alternating exact and approx
/// queries across a small (ε, MinPts) grid.
fn sweep<P: Clone + Sync, M: BatchMetric<P>>(
    engine: &MetricDbscan<P, M>,
    eps_grid: &[f64],
    min_pts_grid: &[usize],
    rho: f64,
) -> Vec<Vec<PointLabel>> {
    let mut out = Vec::new();
    for &eps in eps_grid {
        for &min_pts in min_pts_grid {
            let params = DbscanParams::new(eps, min_pts).expect("params");
            out.push(
                engine
                    .exact(&params)
                    .expect("exact")
                    .clustering
                    .labels()
                    .to_vec(),
            );
            let aparams = ApproxParams::new(eps, min_pts, rho).expect("approx params");
            out.push(
                engine
                    .approx(&aparams)
                    .expect("approx")
                    .clustering
                    .labels()
                    .to_vec(),
            );
        }
    }
    out
}

fn assert_concurrent_sweeps_match<P: Clone + Sync + Send, M: BatchMetric<P>>(
    engine: Arc<MetricDbscan<P, M>>,
    eps_grid: &[f64],
    min_pts_grid: &[usize],
    rho: f64,
) {
    // Single-thread baseline on a cold cache.
    engine.clear_cache();
    let baseline = sweep(&engine, eps_grid, min_pts_grid, rho);
    // Warm or cold, hit or miss, interleaved however the scheduler likes:
    // every worker must reproduce the baseline byte for byte.
    engine.clear_cache();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || sweep(&engine, eps_grid, min_pts_grid, rho))
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            let got = handle.join().expect("worker panicked");
            assert_eq!(got.len(), baseline.len());
            for (q, (g, b)) in got.iter().zip(&baseline).enumerate() {
                assert_eq!(g, b, "worker {w}, query {q}: labels diverged");
            }
        }
    });
}

#[test]
fn eight_threads_share_one_engine_on_blobs() {
    let pts = blobs(
        &BlobSpec {
            n: 800,
            dim: 2,
            clusters: 3,
            std: 1.0,
            center_box: 15.0,
            outlier_frac: 0.05,
        },
        7,
    )
    .into_parts()
    .0;
    let rho = 0.5;
    // rbar fine enough for the approx queries at the smallest eps
    // (rho * eps / 2) serves the exact queries too.
    let engine = Arc::new(
        MetricDbscan::builder(pts, Euclidean)
            .rbar(rho * 0.8 / 2.0)
            .parallel(ParallelConfig::new(2))
            .build()
            .expect("engine"),
    );
    assert_concurrent_sweeps_match(engine, &[0.8, 1.2, 1.6], &[5, 10], rho);
}

#[test]
fn eight_threads_share_one_engine_on_strings() {
    let words = string_clusters(
        &StringSpec {
            n: 120,
            clusters: 3,
            seed_len: 12,
            max_edits: 2,
            alphabet: b"abcd",
            outlier_frac: 0.05,
        },
        11,
    )
    .into_parts()
    .0;
    let rho = 0.5;
    let engine = Arc::new(
        MetricDbscan::builder(words, Levenshtein)
            .rbar(rho * 3.0 / 2.0)
            .build()
            .expect("engine"),
    );
    assert_concurrent_sweeps_match(engine, &[3.0, 4.0], &[3, 4], rho);
}

/// PR-3 satellite: repeated `(ε, MinPts, ρ)` approx probes replay the
/// cached Algorithm-2 summary (same LRU as the fragment artifacts) with
/// bit-identical labels, and the `ε`-keyed adjacency cache serves the
/// sweep.
#[test]
fn repeated_approx_probe_hits_the_summary_cache() {
    let pts = blobs(
        &BlobSpec {
            n: 600,
            dim: 2,
            clusters: 3,
            std: 0.9,
            center_box: 14.0,
            outlier_frac: 0.03,
        },
        5,
    )
    .into_parts()
    .0;
    let aparams = ApproxParams::new(1.0, 8, 0.5).expect("approx params");
    let engine = MetricDbscan::builder(pts, Euclidean)
        .rbar(aparams.rbar())
        .build()
        .expect("engine");
    let cold = engine.approx(&aparams).expect("cold");
    assert!(!cold.report.cache_hit, "first approx probe must miss");
    let warm = engine.approx(&aparams).expect("warm");
    assert!(warm.report.cache_hit, "repeated approx probe must hit");
    assert!(
        warm.report.cache_hits >= 1,
        "RunReport must expose the hit counter"
    );
    assert_eq!(
        cold.clustering, warm.clustering,
        "summary replay must be bit-identical"
    );
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert_eq!(
        (stats.adjacency_hits, stats.adjacency_misses),
        (1, 1),
        "the warm probe must also reuse the ε-keyed adjacency"
    );
    // A different MinPts at the same (ε, ρ) misses the summary cache but
    // still rides the adjacency cache (it depends on ε alone).
    let aparams2 = ApproxParams::new(1.0, 12, 0.5).expect("approx params");
    let other = engine.approx(&aparams2).expect("other");
    assert!(!other.report.cache_hit);
    let stats = engine.cache_stats();
    assert_eq!(stats.adjacency_hits, 2, "adjacency is (ε)-keyed");
    assert_eq!(stats.adjacency_entries, 1);
    // Exact queries interleave in the same LRU without colliding.
    let params = DbscanParams::new(1.0, 8).expect("params");
    let exact_cold = engine.exact(&params).expect("exact cold");
    assert!(
        !exact_cold.report.cache_hit,
        "exact never collides with approx"
    );
    assert!(engine.exact(&params).expect("exact warm").report.cache_hit);
}

#[test]
fn repeated_probe_hits_the_fragment_lru() {
    let pts = blobs(
        &BlobSpec {
            n: 500,
            dim: 2,
            clusters: 2,
            std: 0.8,
            center_box: 12.0,
            outlier_frac: 0.02,
        },
        3,
    )
    .into_parts()
    .0;
    let engine = MetricDbscan::builder(pts, Euclidean)
        .rbar(0.4)
        .build()
        .expect("engine");
    let params = DbscanParams::new(1.0, 8).expect("params");
    let cold = engine.exact(&params).expect("cold");
    assert!(!cold.report.cache_hit, "first probe must be a miss");
    let warm = engine.exact(&params).expect("warm");
    assert!(warm.report.cache_hit, "repeated probe must hit the LRU");
    assert!(
        warm.report.cache_hits >= 1,
        "RunReport must expose the engine's hit counter"
    );
    assert_eq!(
        cold.clustering, warm.clustering,
        "cache replay must be bit-identical"
    );
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}
