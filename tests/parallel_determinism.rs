//! The threading contract, certified end to end: for **every** solver —
//! exact (Algorithm 1 and cover-tree pipelines), ρ-approximate, and the
//! streaming engine — the cluster labels produced with 2 or 8 worker
//! threads are byte-identical to the 1-thread run, on Euclidean blob
//! data and on Levenshtein string data alike.

use metric_dbscan::core::{
    exact_dbscan_covertree_with, ApproxParams, DbscanParams, ExactConfig, MetricDbscan,
    ParallelConfig, PointLabel, StreamingApproxDbscan,
};
use metric_dbscan::datagen::{blobs, string_clusters, BlobSpec, StringSpec};
use metric_dbscan::metric::{BatchMetric, Euclidean, Levenshtein};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 2] = [2, 8];

/// Exact + approx labels at a given thread count, over a fresh-built
/// engine (engine construction itself is also threaded).
fn solve_both<P: Sync + Clone + Send, M: BatchMetric<P> + Sync>(
    pts: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    rho: f64,
    threads: usize,
) -> (Vec<PointLabel>, Vec<PointLabel>) {
    let parallel = ParallelConfig::new(threads);
    let aparams = ApproxParams::new(eps, min_pts, rho).expect("approx params");
    // One engine at the approx radius serves both queries (rbar = ρε/2 ≤ ε/2).
    let engine = MetricDbscan::builder(pts.to_vec(), metric)
        .rbar(aparams.rbar())
        .parallel(parallel)
        .build()
        .expect("engine");
    let cfg = ExactConfig {
        parallel,
        ..ExactConfig::default()
    };
    let params = DbscanParams::new(eps, min_pts).expect("params");
    let exact = engine.exact_with(&params, &cfg).expect("exact").clustering;
    let approx = engine.approx(&aparams).expect("approx").clustering;
    (exact.labels().to_vec(), approx.labels().to_vec())
}

fn streaming_labels<P: Sync + Clone, M: BatchMetric<P> + Sync>(
    pts: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    rho: f64,
    threads: usize,
) -> (Vec<PointLabel>, usize) {
    let params = ApproxParams::new(eps, min_pts, rho).expect("params");
    let (c, engine) =
        StreamingApproxDbscan::run_with(metric, &params, &ParallelConfig::new(threads), || {
            pts.iter().cloned()
        })
        .expect("stream");
    (c.labels().to_vec(), engine.footprint().summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Euclidean blobs: all three solvers agree with their 1-thread runs.
    #[test]
    fn blobs_thread_invariant(seed in 0u64..1000, eps_scale in 0.5f64..2.0) {
        let pts = blobs(
            &BlobSpec {
                n: 600,
                dim: 2,
                clusters: 3,
                std: 1.0,
                center_box: 15.0,
                outlier_frac: 0.05,
            },
            seed,
        )
        .into_parts()
        .0;
        let eps = eps_scale;
        let (exact1, approx1) = solve_both(&pts, &Euclidean, eps, 8, 0.5, 1);
        let (stream1, summary1) = streaming_labels(&pts, &Euclidean, eps, 8, 0.5, 1);
        for threads in THREAD_COUNTS {
            let (exact_t, approx_t) = solve_both(&pts, &Euclidean, eps, 8, 0.5, threads);
            prop_assert_eq!(&exact1, &exact_t, "exact labels diverged at {} threads", threads);
            prop_assert_eq!(&approx1, &approx_t, "approx labels diverged at {} threads", threads);
            let (stream_t, summary_t) = streaming_labels(&pts, &Euclidean, eps, 8, 0.5, threads);
            prop_assert_eq!(&stream1, &stream_t, "streaming labels diverged at {} threads", threads);
            prop_assert_eq!(summary1, summary_t, "streaming summary diverged at {} threads", threads);
        }
    }

    /// Levenshtein string clusters: same contract under a discrete,
    /// expensive metric.
    #[test]
    fn strings_thread_invariant(seed in 0u64..1000) {
        let words = string_clusters(
            &StringSpec {
                n: 150,
                clusters: 3,
                seed_len: 12,
                max_edits: 2,
                alphabet: b"abcd",
                outlier_frac: 0.05,
            },
            seed,
        )
        .into_parts()
        .0;
        let (exact1, approx1) = solve_both(&words, &Levenshtein, 4.0, 4, 0.5, 1);
        let (stream1, _) = streaming_labels(&words, &Levenshtein, 4.0, 4, 0.5, 1);
        for threads in THREAD_COUNTS {
            let (exact_t, approx_t) = solve_both(&words, &Levenshtein, 4.0, 4, 0.5, threads);
            prop_assert_eq!(&exact1, &exact_t, "exact labels diverged at {} threads", threads);
            prop_assert_eq!(&approx1, &approx_t, "approx labels diverged at {} threads", threads);
            let (stream_t, _) = streaming_labels(&words, &Levenshtein, 4.0, 4, 0.5, threads);
            prop_assert_eq!(&stream1, &stream_t, "streaming labels diverged at {} threads", threads);
        }
    }

    /// The §3.2 cover-tree pipeline threads its shared steps too.
    #[test]
    fn covertree_pipeline_thread_invariant(seed in 0u64..1000) {
        let pts = blobs(
            &BlobSpec {
                n: 400,
                dim: 2,
                clusters: 2,
                std: 0.8,
                center_box: 10.0,
                outlier_frac: 0.02,
            },
            seed,
        )
        .into_parts()
        .0;
        let solve = |threads: usize| {
            let cfg = ExactConfig {
                parallel: ParallelConfig::new(threads),
                ..ExactConfig::default()
            };
            exact_dbscan_covertree_with(&pts, &Euclidean, 1.2, 6, &cfg)
                .expect("covertree pipeline")
                .0
                .labels()
                .to_vec()
        };
        let baseline = solve(1);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&baseline, &solve(threads), "diverged at {} threads", threads);
        }
    }
}
