//! Loopback smoke tests for the serving tier (PR 6): a real
//! `std::net` server over a shared engine, driven by the typed client.
//!
//! * Mixed query + ingest + worker-kill traffic: every served label
//!   vector is **byte-identical** to calling the same `Arc`'d engine
//!   directly, across solvers and epochs, and killed workers come back.
//! * Overload: with every worker pinned and the queue full, excess
//!   connections shed with a typed `Overloaded{retry_after_ms}` — and
//!   the server serves normally again once the burst passes.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use metric_dbscan::core::{ApproxParams, DbscanParams, MetricDbscan};
use metric_dbscan::datagen::{blobs, BlobSpec};
use metric_dbscan::metric::Euclidean;
use metric_dbscan::serve::{protocol, Client, RetryPolicy, ServeConfig, Server, Solver};

const EPS: f64 = 1.6;
const MIN_PTS: usize = 5;
const RHO: f64 = 0.75;

fn dataset() -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n: 260,
            dim: 2,
            clusters: 3,
            std: 0.8,
            center_box: 20.0,
            outlier_frac: 0.1,
        },
        29,
    )
    .into_parts()
    .0
}

fn test_client(addr: std::net::SocketAddr) -> Client<Vec<f64>> {
    Client::with_policy(
        addr,
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(25),
            timeout: Duration::from_secs(5),
            seed: 7,
        },
    )
}

#[test]
fn mixed_traffic_matches_direct_engine_calls_and_workers_resurrect() {
    let pts = dataset();
    let (initial, reserve) = pts.split_at(200);
    let engine = Arc::new(
        MetricDbscan::builder(initial.to_vec(), Euclidean)
            .rbar(0.5)
            .build()
            .unwrap(),
    );
    let server = Server::spawn(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            test_ops: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = test_client(server.local_addr());

    let params = DbscanParams::new(EPS, MIN_PTS).unwrap();
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).unwrap();
    let solvers = [
        Solver::Exact,
        Solver::Approx(RHO),
        Solver::CoverTree,
        Solver::Streaming(RHO),
    ];
    let mut kills = 0u64;
    for (round, batch) in reserve.chunks(12).enumerate() {
        for (si, solver) in solvers.iter().enumerate() {
            let wire = client.query(*solver, EPS, MIN_PTS).unwrap();
            // The same engine, called in-process, pinned to a snapshot
            // exactly like the server does.
            let snap = engine.snapshot();
            let direct = match solver {
                Solver::Exact => snap.exact(&params).unwrap(),
                Solver::Approx(_) => snap.approx(&aparams).unwrap(),
                Solver::CoverTree => snap.covertree(&params).unwrap(),
                Solver::Streaming(_) => snap.streaming(&aparams).unwrap(),
            };
            assert_eq!(
                wire.labels,
                direct.clustering.labels().to_vec(),
                "round {round} solver {si}: served labels must be byte-identical"
            );
            assert_eq!(wire.epoch, engine.epoch());
        }

        // Kill a worker mid-stream; the supervisor must restore the
        // pool without dropping the session's correctness.
        if round % 2 == 1 {
            let _ = client.crash_worker();
            kills += 1;
        }

        let report = client.ingest(batch.to_vec()).unwrap();
        assert_eq!(report.added_points as usize, batch.len());
        assert!(
            report.covered,
            "the net must keep covering after a wire ingest"
        );
    }

    // Ingests went through the wire: the shared engine grew.
    assert_eq!(engine.num_points(), pts.len());

    let stats = server.stats();
    assert!(stats.served > 0);
    assert_eq!(stats.num_points as usize, pts.len());
    // The supervisor polls every few ms — give the last kill a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.stats().workers_respawned < kills && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let respawned = server.stats().workers_respawned;
    assert!(
        respawned >= kills,
        "every killed worker must be resurrected (killed {kills}, respawned {respawned})"
    );

    // The pool is actually alive after the kills, not just counted.
    assert!(client.query(Solver::Exact, EPS, MIN_PTS).is_ok());
    server.shutdown();
}

#[test]
fn overload_sheds_typed_and_recovers() {
    let engine = Arc::new(
        MetricDbscan::builder(dataset(), Euclidean)
            .rbar(0.5)
            .build()
            .unwrap(),
    );
    let server = Server::spawn(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_millis(200),
            retry_after_ms: 10,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Pin the only worker with a connection that never sends a frame
    // (costs the worker exactly one read deadline).
    let staller = std::thread::spawn(move || {
        let s = TcpStream::connect(addr);
        std::thread::sleep(Duration::from_millis(150));
        drop(s);
    });
    std::thread::sleep(Duration::from_millis(30));

    // Open the whole burst before reading any reply so the queue (1)
    // genuinely overflows.
    let mut burst: Vec<TcpStream> = (0..6).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut shed = 0u64;
    for s in &mut burst {
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        // A shed connection is already closed server-side (its
        // Overloaded frame sits in our receive buffer), so the write
        // may legitimately fail with EPIPE — the read is what counts.
        let _ = protocol::write_frame(s, &protocol::Request::<Vec<f64>>::Stats.encode());
        if let Ok(Some(payload)) = protocol::read_frame(s) {
            if let Ok(protocol::Response::Overloaded { retry_after_ms }) =
                protocol::Response::decode(&payload)
            {
                assert_eq!(retry_after_ms, 10, "the shed carries the configured hint");
                shed += 1;
            }
        }
    }
    drop(burst);
    staller.join().unwrap();
    assert!(shed > 0, "burst past a full queue must shed typed");
    assert!(
        server.stats().shed >= shed,
        "the server's shed counter must cover every Overloaded we read"
    );

    // Once the burst passes, a retrying client gets real answers — the
    // shed path never wedges the server.
    let mut client = test_client(addr);
    let direct = engine
        .snapshot()
        .exact(&DbscanParams::new(EPS, MIN_PTS).unwrap())
        .unwrap();
    let wire = client.query(Solver::Exact, EPS, MIN_PTS).unwrap();
    assert_eq!(wire.labels, direct.clustering.labels().to_vec());
    server.shutdown();
}
