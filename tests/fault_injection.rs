//! Deterministic fault injection (PR 6): every fault the serving tier
//! claims to survive, injected on a seeded schedule and asserted
//! typed.
//!
//! 1. **Torn checkpoints**: the newest numbered checkpoint truncated
//!    at *every* section boundary (and at `FaultPlan`-chosen byte
//!    offsets) — `load_latest` must fall back to the last good
//!    checkpoint, with zero distance evaluations, and answer that
//!    epoch bit-identically.
//! 2. **No good checkpoint**: an empty directory and an all-torn
//!    directory each fail typed, never garbage.
//! 3. **Poisoned writer quarantine**: a metric that panics mid-ingest
//!    poisons only the writer — further ingests fail with
//!    `DbscanError::Poisoned`, queries keep serving the last published
//!    epoch bit-identically.
//! 4. **Server chaos**: a loopback server under a seeded `FaultPlan`
//!    (dropped/stalling connections, mid-solver metric panics, worker
//!    kills, post-save torn checkpoints) never crashes; every request
//!    gets a correct reply or a typed error; afterwards the socket
//!    still answers byte-identically to the engine and `load_latest`
//!    warm-starts bit-identically from the surviving checkpoint.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use metric_dbscan::core::{DbscanError, DbscanParams, MetricDbscan, PointLabel};
use metric_dbscan::datagen::{blobs, BlobSpec};
use metric_dbscan::metric::{CountingMetric, Euclidean};
use metric_dbscan::persist::checkpoint_path;
use metric_dbscan::serve::{
    Client, ClientError, ConnFault, FaultPlan, PanicMetric, RetryPolicy, SaveFault, ServeConfig,
    Server, Solver,
};

const EPS: f64 = 1.6;
const MIN_PTS: usize = 5;
const RHO: f64 = 0.75;

fn dataset() -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n: 240,
            dim: 2,
            clusters: 3,
            std: 0.8,
            center_box: 20.0,
            outlier_frac: 0.1,
        },
        17,
    )
    .into_parts()
    .0
}

fn params() -> DbscanParams {
    DbscanParams::new(EPS, MIN_PTS).unwrap()
}

/// A per-process-and-test-unique scratch directory.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdbscan_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Walks the artifact framing (magic + header + `name,len,crc,payload`
/// frames) and returns every section boundary: the offset where the
/// header ends and where each section's payload ends. A crash that
/// tears a non-atomic write would most plausibly stop at exactly these
/// offsets — a whole section present, the next missing.
fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap()) as usize;
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap()) as usize;
    let mut off = 8 + 4 + 1; // magic, version, kind
    off += 4 + u32_at(off); // point tag (u32 len + bytes)
    off += 4 + u32_at(off); // metric tag
    let num_sections = u32_at(off);
    off += 4; // section count
    off += 4; // header CRC
    let mut out = vec![off];
    for _ in 0..num_sections {
        off += 4 + u32_at(off); // section name
        let payload_len = u64_at(off);
        off += 8; // payload length
        off += 4; // section CRC
        off += payload_len;
        out.push(off);
    }
    assert_eq!(off, bytes.len(), "walker drifted off the framing");
    out
}

#[test]
fn torn_newest_checkpoint_falls_back_to_last_good_with_zero_evals() {
    let pts = dataset();
    let (initial, rest) = pts.split_at(180);
    let dir = temp_dir("torn_boundaries");
    let engine = MetricDbscan::builder(initial.to_vec(), CountingMetric::new(Euclidean))
        .rbar(0.5)
        .build()
        .unwrap();
    engine.exact(&params()).unwrap(); // warm the caches into the artifact
    let good_seq = engine.save_checkpoint(&dir).unwrap();
    let good_labels = engine
        .exact(&params())
        .unwrap()
        .clustering
        .labels()
        .to_vec();

    engine.ingest(rest.to_vec()).unwrap();
    engine.exact(&params()).unwrap();
    let newest_seq = engine.save_checkpoint(&dir).unwrap();
    assert!(newest_seq > good_seq);
    let newest_labels = engine
        .exact(&params())
        .unwrap()
        .clustering
        .labels()
        .to_vec();
    let newest_path = checkpoint_path(&dir, newest_seq);
    let newest_bytes = std::fs::read(&newest_path).unwrap();

    // Cut points: every section boundary (except the full file), a few
    // bytes into each frame, and FaultPlan-chosen arbitrary offsets.
    let boundaries = section_boundaries(&newest_bytes);
    let mut cuts: Vec<usize> = boundaries[..boundaries.len() - 1].to_vec();
    cuts.extend(boundaries[1..].iter().map(|b| b - 3));
    let mut plan = FaultPlan::new(99);
    for _ in 0..6 {
        cuts.push(plan.torn_offset(newest_bytes.len()));
    }

    for cut in cuts {
        std::fs::write(&newest_path, &newest_bytes[..cut]).unwrap();
        let (restored, seq) = MetricDbscan::<Vec<f64>, CountingMetric<Euclidean>>::load_latest(
            &dir,
            CountingMetric::new(Euclidean),
        )
        .unwrap_or_else(|e| panic!("cut at byte {cut}: load_latest must fall back, got {e}"));
        assert_eq!(seq, good_seq, "cut at {cut}: wrong checkpoint won");
        assert_eq!(
            restored.metric().count(),
            0,
            "cut at {cut}: fallback probing must stay zero-eval"
        );
        assert_eq!(
            restored.exact(&params()).unwrap().clustering.labels(),
            &good_labels[..],
            "cut at {cut}: the last good epoch must answer bit-identically"
        );
    }

    // Restore the newest artifact: it must win again.
    std::fs::write(&newest_path, &newest_bytes).unwrap();
    let (restored, seq) = MetricDbscan::<Vec<f64>, CountingMetric<Euclidean>>::load_latest(
        &dir,
        CountingMetric::new(Euclidean),
    )
    .unwrap();
    assert_eq!(seq, newest_seq);
    assert_eq!(restored.metric().count(), 0);
    assert_eq!(
        restored.exact(&params()).unwrap().clustering.labels(),
        &newest_labels[..]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_loadable_checkpoint_fails_typed() {
    // Empty (indeed absent) directory → typed Io, not a panic.
    let dir = temp_dir("no_checkpoints");
    assert!(matches!(
        MetricDbscan::<Vec<f64>, Euclidean>::load_latest(&dir, Euclidean),
        Err(DbscanError::Io(_))
    ));

    // Every checkpoint torn → the newest checkpoint's typed error.
    std::fs::create_dir_all(&dir).unwrap();
    let engine = MetricDbscan::builder(dataset(), Euclidean)
        .rbar(0.5)
        .build()
        .unwrap();
    for _ in 0..2 {
        let seq = engine.save_checkpoint(&dir).unwrap();
        let path = checkpoint_path(&dir, seq);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    }
    assert!(matches!(
        MetricDbscan::<Vec<f64>, Euclidean>::load_latest(&dir, Euclidean),
        Err(DbscanError::Format { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ingest_panic_quarantines_the_writer_but_queries_keep_serving() {
    let pts = dataset();
    let (initial, rest) = pts.split_at(200);
    let (metric, switch) = PanicMetric::new(Euclidean);
    let engine = MetricDbscan::builder(initial.to_vec(), metric)
        .rbar(0.5)
        .build()
        .unwrap();
    let before = engine.exact(&params()).unwrap().clustering;
    let epoch_before = engine.epoch();

    // Detonate the metric mid-ingest: the panic escapes `ingest` (the
    // engine holds no catch_unwind — that is the *server's* job) and
    // poisons the writer lock.
    switch.arm(3);
    let blown = catch_unwind(AssertUnwindSafe(|| engine.ingest(rest.to_vec())));
    assert!(blown.is_err(), "the armed metric must panic mid-ingest");
    switch.disarm();

    // The writer is quarantined, typed.
    match engine.ingest(rest.to_vec()) {
        Err(DbscanError::Poisoned(what)) => assert!(what.contains("writer"), "got: {what}"),
        other => panic!("expected Poisoned, got {other:?}"),
    }
    // Checkpointing needs the writer too — also typed, never torn.
    match engine.save_checkpoint(temp_dir("poisoned_save")) {
        Err(DbscanError::Poisoned(_)) => {}
        other => panic!("expected Poisoned, got {other:?}"),
    }

    // Queries never touched the quarantined batch: same epoch, same
    // labels, bit-identical.
    assert_eq!(engine.epoch(), epoch_before);
    assert_eq!(engine.num_points(), initial.len());
    assert_eq!(engine.exact(&params()).unwrap().clustering, before);
}

fn expected_labels(
    engine: &MetricDbscan<Vec<f64>, PanicMetric<Euclidean>>,
    solver: Solver,
) -> Vec<PointLabel> {
    use metric_dbscan::core::ApproxParams;
    let p = params();
    let ap = ApproxParams::new(EPS, MIN_PTS, RHO).unwrap();
    let snap = engine.snapshot();
    let run = match solver {
        Solver::Exact => snap.exact(&p).unwrap(),
        Solver::Approx(_) => snap.approx(&ap).unwrap(),
        Solver::CoverTree => snap.covertree(&p).unwrap(),
        Solver::Streaming(_) => snap.streaming(&ap).unwrap(),
    };
    run.clustering.labels().to_vec()
}

#[test]
fn server_survives_a_seeded_chaos_schedule() {
    let pts = dataset();
    let (initial, reserve) = pts.split_at(180);
    let dir = temp_dir("chaos");
    let (metric, switch) = PanicMetric::new(Euclidean);
    let engine = Arc::new(
        MetricDbscan::builder(initial.to_vec(), metric)
            .rbar(0.5)
            .build()
            .unwrap(),
    );
    let server = Server::spawn(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_capacity: 4,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_millis(250),
            retry_after_ms: 5,
            checkpoint_dir: Some(dir.clone()),
            test_ops: true,
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::<Vec<f64>>::with_policy(
        addr,
        RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(30),
            timeout: Duration::from_secs(2),
            seed: 31,
        },
    );

    let solvers = [
        Solver::Exact,
        Solver::Approx(RHO),
        Solver::CoverTree,
        Solver::Streaming(RHO),
    ];
    let mut plan = FaultPlan::new(2024);
    let mut reserve_iter = reserve.chunks(10);
    // Labels captured at each surviving checkpoint's save time, so the
    // post-chaos warm start can be checked bit-for-bit.
    let mut last_good: Option<(u64, Vec<PointLabel>)> = None;
    let mut panics_armed = 0u64;

    for round in 0..24 {
        match plan.next_conn_fault() {
            ConnFault::None => {}
            ConnFault::Drop => {
                if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                    use std::io::Write as _;
                    let _ = s.write_all(&[0xBA, 0xD0]); // torn frame, then vanish
                }
            }
            ConnFault::Stall(d) => {
                std::thread::spawn(move || {
                    let s = std::net::TcpStream::connect(addr);
                    std::thread::sleep(d);
                    drop(s);
                });
            }
        }
        if round % 6 == 2 {
            let _ = client.crash_worker();
        }
        if let Some(after) = plan.next_query_panic() {
            switch.arm(after);
            panics_armed += 1;
        }
        let solver = solvers[round % solvers.len()];
        let outcome = client.query(solver, EPS, MIN_PTS);
        switch.disarm();
        match outcome {
            // Success must mean *correct*, not merely delivered.
            Ok(reply) => assert_eq!(
                reply.labels,
                expected_labels(&engine, solver),
                "round {round}: served labels diverged from the engine"
            ),
            Err(ClientError::Internal(msg)) => {
                assert!(
                    msg.contains("injected metric fault"),
                    "round {round}: {msg}"
                )
            }
            Err(ClientError::Overloaded { .. }) | Err(ClientError::Io(_)) => {}
            Err(other) => panic!("round {round}: untyped failure {other}"),
        }

        if round % 4 == 1 {
            if let Some(batch) = reserve_iter.next() {
                client.ingest(batch.to_vec()).unwrap();
            }
        }
        if round % 5 == 3 {
            let seq = client.save_checkpoint().unwrap();
            let path = checkpoint_path(&dir, seq);
            let bytes = std::fs::read(&path).unwrap();
            if let SaveFault::TornAt(_) = plan.next_save_fault(bytes.len()) {
                // Corrupt the newest checkpoint in place; load_latest
                // must skip it.
                let cut = plan.torn_offset(bytes.len());
                std::fs::write(&path, &bytes[..cut]).unwrap();
            } else {
                last_good = Some((seq, expected_labels(&engine, Solver::Exact)));
            }
        }
    }
    assert!(panics_armed > 0, "the seeded plan armed no panics");
    assert!(
        last_good.is_some(),
        "the seeded plan left no good checkpoint"
    );

    // The server is still standing and still exact.
    let reply = client.query(Solver::Exact, EPS, MIN_PTS).unwrap();
    assert_eq!(reply.labels, expected_labels(&engine, Solver::Exact));
    let stats = server.stats();
    assert!(
        stats.panics > 0,
        "injected panics must be isolated server-side"
    );
    server.shutdown();

    // Warm start skips the torn tail and lands on the last good
    // checkpoint, answering exactly what the engine answered when that
    // checkpoint was written.
    let (good_seq, good_labels) = last_good.unwrap();
    let (restored, seq) = MetricDbscan::<Vec<f64>, CountingMetric<Euclidean>>::load_latest(
        &dir,
        CountingMetric::new(Euclidean),
    )
    .unwrap();
    assert_eq!(
        seq, good_seq,
        "the torn tail must lose to the last good save"
    );
    assert_eq!(restored.metric().count(), 0, "warm start stays zero-eval");
    assert_eq!(
        restored.exact(&params()).unwrap().clustering.labels(),
        &good_labels[..],
        "warm start must be bit-identical to the saved epoch"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
