//! The solvers are generic over the metric: run the full pipeline on
//! sparse bag-of-words vectors under Jaccard distance and on angular
//! distance — no coordinate structure, only the metric axioms.

use metric_dbscan::baselines::original_dbscan;
use metric_dbscan::core::exact_dbscan;
use metric_dbscan::metric::{SparseJaccard, SparseVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic bag-of-words: each cluster has a vocabulary block; documents
/// sample words mostly from their block.
fn bow_corpus(seed: u64) -> (Vec<SparseVector>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut docs = Vec::new();
    let mut labels = Vec::new();
    for cluster in 0..3u32 {
        let vocab_base = cluster * 100;
        for _ in 0..40 {
            let mut entries = Vec::new();
            for _ in 0..20 {
                // 90 % in-topic words, 10 % global noise words
                let idx = if rng.random::<f64>() < 0.9 {
                    vocab_base + rng.random_range(0..30)
                } else {
                    1000 + rng.random_range(0..50)
                };
                entries.push((idx, 1.0));
            }
            docs.push(SparseVector::new(entries));
            labels.push(cluster as i32);
        }
    }
    // a few junk documents with their own unique vocabulary
    for k in 0..5u32 {
        let entries: Vec<(u32, f64)> = (0..20).map(|w| (2000 + k * 100 + w, 1.0)).collect();
        docs.push(SparseVector::new(entries));
        labels.push(-1);
    }
    (docs, labels)
}

#[test]
fn jaccard_bow_clusters_are_recovered() {
    let (docs, truth) = bow_corpus(3);
    // in-topic documents share most of a 30-word vocabulary → Jaccard
    // distance well below ~0.9; junk documents share nothing → 1.0
    let c = exact_dbscan(&docs, &SparseJaccard, 0.85, 5).unwrap();
    assert_eq!(c.num_clusters(), 3);
    for (i, &t) in truth.iter().enumerate() {
        if t == -1 {
            assert!(c.labels()[i].is_noise(), "junk doc {i} not rejected");
        }
    }
    let pred = c.assignments();
    let ari = metric_dbscan::eval::adjusted_rand_index(&truth, &pred);
    assert!(ari > 0.9, "ARI {ari}");
}

#[test]
fn accelerated_pipeline_is_exact_under_jaccard() {
    let (docs, _) = bow_corpus(7);
    for eps in [0.7, 0.85] {
        let ours = exact_dbscan(&docs, &SparseJaccard, eps, 4).unwrap();
        let reference = original_dbscan(&docs, &SparseJaccard, eps, 4);
        assert_eq!(ours.num_clusters(), reference.num_clusters(), "eps={eps}");
        for i in 0..docs.len() {
            assert_eq!(
                ours.labels()[i].is_core(),
                reference.labels()[i].is_core(),
                "eps={eps} i={i}"
            );
            assert_eq!(
                ours.labels()[i].is_noise(),
                reference.labels()[i].is_noise(),
                "eps={eps} i={i}"
            );
        }
    }
}
