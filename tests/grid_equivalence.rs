//! The grid candidate index contract, certified end to end (PR 7):
//! selecting [`CandidateIndex::Grid`] on a low-dimensional
//! [`VectorBlock`] engine changes **which pairs the metric inspects**,
//! never the labels. For every solver — exact (plain and
//! eval-counting `exact_with`), cover-tree, and ρ-approximate — labels
//! are bit-identical to the generic path for both scalar types
//! (`f32`/`f64`), both supported dimensions (2 and 3), every thread
//! count, and pruning on or off; an ingest-grown grid engine matches a
//! fresh build at every epoch; save/load preserves the builder toggle;
//! and incompatible workloads (high-dimensional blocks, non-coordinate
//! metrics) silently fall back to the generic path with zeroed
//! candidate counters. Streaming runs never consult the grid.

use metric_dbscan::core::{
    ApproxParams, CandidateIndex, CandidateStats, DbscanParams, ExactConfig, MetricDbscan,
    NetStrategy, ParallelConfig, PointLabel, Run,
};
use metric_dbscan::datagen::{lowdim_blobs, string_clusters, LowDimSpec, StringSpec};
use metric_dbscan::metric::{BlockScalar, Levenshtein, PruningConfig, VectorBlock};

const EPS: f64 = 2.5;
const MIN_PTS: usize = 8;
const RHO: f64 = 0.5;

fn lowdim_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    lowdim_blobs(
        &LowDimSpec {
            n,
            dim,
            clusters: 5,
            std: 1.0,
            noise_frac: 0.05,
            extent: 30.0,
        },
        seed,
    )
    .into_parts()
    .0
}

/// Builds a fresh engine over every row of `block` (fresh so no cache
/// can leak artifacts between the grid and generic configurations).
fn block_engine<T: BlockScalar + Send + Sync + 'static>(
    block: &VectorBlock<T>,
    index: CandidateIndex,
    threads: usize,
    pruning: PruningConfig,
) -> MetricDbscan<u32, VectorBlock<T>> {
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    MetricDbscan::builder(block.ids(), block.clone())
        .rbar(aparams.rbar())
        .parallel(ParallelConfig::new(threads))
        .pruning(pruning)
        .candidate_index(index)
        .build()
        .expect("engine")
}

/// Labels from all four solver entry points plus the merged candidate
/// counters those runs reported.
fn solve_all<P: Clone + Send + Sync + 'static, M>(
    engine: &MetricDbscan<P, M>,
) -> (Vec<Vec<PointLabel>>, CandidateStats)
where
    M: metric_dbscan::metric::BatchMetric<P> + Sync,
{
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    let cfg = ExactConfig {
        parallel: engine.parallel(),
        count_distance_evals: true,
        ..ExactConfig::default()
    };
    let runs: Vec<Run> = vec![
        engine.exact(&params).expect("exact"),
        engine.exact_with(&params, &cfg).expect("exact_with"),
        engine.covertree(&params).expect("covertree"),
        engine.approx(&aparams).expect("approx"),
    ];
    let mut candidates = CandidateStats::default();
    let labels = runs
        .iter()
        .map(|r| {
            candidates.merge(&r.report.candidates);
            r.clustering.labels().to_vec()
        })
        .collect();
    (labels, candidates)
}

fn scalar_sweep<T: BlockScalar + Send + Sync + 'static>(rows: &[Vec<f64>], dim: usize) {
    let block = VectorBlock::<T>::from_rows(rows);
    let (baseline, generic_stats) = solve_all(&block_engine(
        &block,
        CandidateIndex::Generic,
        1,
        PruningConfig::default(),
    ));
    assert_eq!(
        generic_stats,
        CandidateStats::default(),
        "generic path must report zero candidate work (dim {dim})"
    );
    for threads in [1usize, 4] {
        for pruning in [PruningConfig::default(), PruningConfig::off()] {
            let engine = block_engine(&block, CandidateIndex::Grid, threads, pruning);
            let (grid, grid_stats) = solve_all(&engine);
            assert_eq!(
                baseline, grid,
                "grid labels diverged (dim {dim}, {threads} threads, pruning {pruning:?})"
            );
            assert!(
                grid_stats.cells_probed > 0 && grid_stats.candidates_emitted > 0,
                "grid candidate counters never fired (dim {dim}): {grid_stats:?}"
            );
            let cache = engine.cache_stats();
            assert!(
                cache.grid_misses >= 1,
                "the grid must have been built at least once: {cache:?}"
            );
            // Generic runs at the other thread/pruning settings must
            // also agree (the existing pruning/determinism suites cover
            // this, but it pins the baseline used above).
            let (generic, _) = solve_all(&block_engine(
                &block,
                CandidateIndex::Generic,
                threads,
                pruning,
            ));
            assert_eq!(baseline, generic, "generic baseline moved (dim {dim})");
        }
    }
}

/// Headline equivalence: grid and generic paths agree bit-identically
/// for every solver × scalar type × dimension × thread count × pruning
/// setting, and the grid actually does candidate work.
#[test]
fn grid_matches_generic_all_solvers() {
    for dim in [2usize, 3] {
        let rows = lowdim_rows(900, dim, 42 + dim as u64);
        scalar_sweep::<f64>(&rows, dim);
        scalar_sweep::<f32>(&rows, dim);
    }
}

/// An ingest-grown grid engine must label exactly like a fresh
/// radius-guided build — and like the generic path — at every epoch
/// (this drives the grid's incremental `extend` upgrade path).
#[test]
fn ingest_grown_matches_fresh_at_every_epoch() {
    let rows = lowdim_rows(600, 2, 7);
    let block = VectorBlock::<f64>::from_rows(&rows);
    let ids = block.ids();
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    let build = |prefix: &[u32], index: CandidateIndex| {
        MetricDbscan::builder(prefix.to_vec(), block.clone())
            .rbar(aparams.rbar())
            .net_strategy(NetStrategy::RadiusGuided)
            .candidate_index(index)
            .build()
            .expect("engine")
    };
    let grown = build(&ids[..200], CandidateIndex::Grid);
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let mut upto = 200;
    while upto < ids.len() {
        let next = (upto + 150).min(ids.len());
        grown
            .ingest(ids[upto..next].iter().copied())
            .expect("ingest");
        upto = next;
        let grown_run = grown.exact(&params).expect("grown exact");
        let fresh_grid = build(&ids[..upto], CandidateIndex::Grid);
        let fresh_generic = build(&ids[..upto], CandidateIndex::Generic);
        assert_eq!(
            grown_run.clustering.labels(),
            fresh_grid
                .exact(&params)
                .expect("fresh grid")
                .clustering
                .labels(),
            "grown grid diverged from fresh grid at {upto} points"
        );
        assert_eq!(
            grown_run.clustering.labels(),
            fresh_generic
                .exact(&params)
                .expect("fresh generic")
                .clustering
                .labels(),
            "grown grid diverged from generic at {upto} points"
        );
        let approx_grown = grown.approx(&aparams).expect("grown approx");
        let approx_generic = fresh_generic.approx(&aparams).expect("generic approx");
        assert_eq!(
            approx_grown.clustering.labels(),
            approx_generic.clustering.labels(),
            "approx diverged at {upto} points"
        );
    }
    let cache = grown.cache_stats();
    assert!(
        cache.grid_misses >= 2,
        "each epoch's grid is a distinct cache entry: {cache:?}"
    );
}

/// Save/load round trip: the candidate-index toggle travels in the
/// artifact and the loaded engine labels identically through the grid.
#[test]
fn save_load_preserves_candidate_index() {
    let rows = lowdim_rows(400, 2, 11);
    let block = VectorBlock::<f64>::from_rows(&rows);
    let engine = block_engine(&block, CandidateIndex::Grid, 1, PruningConfig::default());
    let params = DbscanParams::new(EPS, MIN_PTS).expect("params");
    let before = engine.exact(&params).expect("exact").clustering;

    let mut path = std::env::temp_dir();
    path.push(format!("mdbscan_grid_eq_{}.mdb", std::process::id()));
    engine.save(&path).expect("save");
    let loaded: MetricDbscan<u32, VectorBlock<f64>> =
        MetricDbscan::load(&path, block.clone()).expect("load");
    let _ = std::fs::remove_file(&path);

    assert_eq!(loaded.candidate_index(), CandidateIndex::Grid);
    let run = loaded.exact(&params).expect("loaded exact");
    assert_eq!(before, run.clustering, "loaded grid labels diverged");
    assert!(
        run.report.candidates.cells_probed > 0,
        "loaded engine must still use the grid: {:?}",
        run.report.candidates
    );

    // A generic engine's artifact keeps decoding to Generic.
    let generic = block_engine(&block, CandidateIndex::Generic, 1, PruningConfig::default());
    generic.save(&path).expect("save generic");
    let loaded_generic: MetricDbscan<u32, VectorBlock<f64>> =
        MetricDbscan::load(&path, block.clone()).expect("load generic");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded_generic.candidate_index(), CandidateIndex::Generic);
}

/// The `Grid` toggle is a no-op for workloads the grid cannot serve:
/// high-dimensional blocks (d > `GRID_MAX_DIM`) and non-coordinate
/// metrics fall back to the generic path — identical labels, zero
/// candidate counters, zero grid cache traffic.
#[test]
fn incompatible_workloads_fall_back_to_generic() {
    // d = 8 exceeds the grid's dimension gate.
    let rows: Vec<Vec<f64>> = lowdim_rows(300, 2, 3)
        .into_iter()
        .map(|p| {
            let mut wide = p.clone();
            while wide.len() < 8 {
                wide.push(p[wide.len() % 2] * 0.5);
            }
            wide
        })
        .collect();
    let block = VectorBlock::<f64>::from_rows(&rows);
    let grid_engine = block_engine(&block, CandidateIndex::Grid, 1, PruningConfig::default());
    let (grid_labels, grid_stats) = solve_all(&grid_engine);
    let (generic_labels, _) = solve_all(&block_engine(
        &block,
        CandidateIndex::Generic,
        1,
        PruningConfig::default(),
    ));
    assert_eq!(grid_labels, generic_labels, "high-d fallback moved labels");
    assert_eq!(
        grid_stats,
        CandidateStats::default(),
        "high-d fallback must do zero grid work"
    );
    let cache = grid_engine.cache_stats();
    assert_eq!(
        (cache.grid_hits, cache.grid_misses, cache.grid_entries),
        (0, 0, 0),
        "fallback must never touch the grid cache: {cache:?}"
    );

    // Levenshtein has no coordinate view at all.
    let words = string_clusters(
        &StringSpec {
            n: 120,
            clusters: 3,
            seed_len: 12,
            max_edits: 2,
            alphabet: b"abcd",
            outlier_frac: 0.05,
        },
        5,
    )
    .into_parts()
    .0;
    let solve = |index: CandidateIndex| {
        let engine = MetricDbscan::builder(words.clone(), Levenshtein)
            .rbar(2.0)
            .candidate_index(index)
            .build()
            .expect("engine");
        let run = engine
            .exact(&DbscanParams::new(4.0, 4).expect("params"))
            .expect("exact");
        (run.clustering.labels().to_vec(), run.report.candidates)
    };
    let (grid_words, stats) = solve(CandidateIndex::Grid);
    let (generic_words, _) = solve(CandidateIndex::Generic);
    assert_eq!(grid_words, generic_words, "string fallback moved labels");
    assert_eq!(stats, CandidateStats::default());
}

/// Streaming never consults the grid: labels match a generic engine's
/// streaming run and the report carries zero candidate counters.
#[test]
fn streaming_is_grid_agnostic() {
    let rows = lowdim_rows(400, 2, 19);
    let block = VectorBlock::<f64>::from_rows(&rows);
    let aparams = ApproxParams::new(EPS, MIN_PTS, RHO).expect("approx params");
    let grid_run = block_engine(&block, CandidateIndex::Grid, 1, PruningConfig::default())
        .streaming(&aparams)
        .expect("grid streaming");
    let generic_run = block_engine(&block, CandidateIndex::Generic, 1, PruningConfig::default())
        .streaming(&aparams)
        .expect("generic streaming");
    assert_eq!(
        grid_run.clustering.labels(),
        generic_run.clustering.labels(),
        "streaming labels diverged"
    );
    assert_eq!(grid_run.report.candidates, CandidateStats::default());
}
