//! The persistence contract (PR 5).
//!
//! 1. **Round trip**: a saved-then-loaded engine answers every solver
//!    **bit-identically** — labels, `RunReport` distance-evaluation
//!    counters, and cache-hit behavior — with **zero distance
//!    evaluations during the load itself** (asserted via the counting
//!    metric), for vector and string metrics, pruning on and off.
//! 2. **Ingest resume**: `ingest` after a load continues the
//!    radius-guided determinism contract as if the process never died —
//!    same labels, same per-ingest evaluation counts as an unrestarted
//!    engine, at every epoch.
//! 3. **Typed failure**: a truncated file, a flipped payload byte, a
//!    wrong point-type tag, a wrong metric tag, and a missing file each
//!    yield the matching `DbscanError` variant — never garbage
//!    clusters.
//! 4. **Format stability**: `tests/fixtures/golden_v1.mdb` (checked
//!    in) keeps loading and answering; regenerate it only on a
//!    deliberate, version-bumped format change (see
//!    `regenerate_golden_fixture`).

use std::path::PathBuf;
use std::sync::Arc;

use metric_dbscan::core::{
    ApproxParams, DbscanError, DbscanParams, MetricDbscan, NetStrategy, PointLabel,
};
use metric_dbscan::datagen::{blobs, string_clusters, BlobSpec, StringSpec};
use metric_dbscan::metric::{
    BatchMetric, CountingMetric, Euclidean, Levenshtein, Manhattan, MetricTag, PersistPoint,
    PruningConfig, VectorBlock,
};

fn vector_points() -> Vec<Vec<f64>> {
    blobs(
        &BlobSpec {
            n: 220,
            dim: 2,
            clusters: 3,
            std: 0.8,
            center_box: 20.0,
            outlier_frac: 0.1,
        },
        13,
    )
    .into_parts()
    .0
}

fn string_points() -> Vec<String> {
    string_clusters(
        &StringSpec {
            n: 70,
            clusters: 3,
            seed_len: 12,
            max_edits: 2,
            alphabet: b"acgt",
            outlier_frac: 0.1,
        },
        5,
    )
    .into_parts()
    .0
}

/// A per-process-unique scratch path; removed by the caller.
fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mdbscan_persist_{}_{name}.mdb", std::process::id()));
    p
}

/// Labels + distance evaluations + cache-hit flag of one solver query.
struct Probe {
    labels: Vec<PointLabel>,
    evals: u64,
    cache_hit: bool,
}

/// Runs all four solvers, resetting the counting metric around each so
/// every probe records its own evaluation count.
fn probe_all<P, M>(
    engine: &MetricDbscan<P, CountingMetric<M>>,
    params: &DbscanParams,
    aparams: &ApproxParams,
) -> Vec<Probe>
where
    P: Clone + Sync,
    CountingMetric<M>: BatchMetric<P>,
{
    let mut out = Vec::new();
    engine.metric().reset();
    let run = engine.exact(params).unwrap();
    out.push(Probe {
        labels: run.clustering.labels().to_vec(),
        evals: engine.metric().reset(),
        cache_hit: run.report.cache_hit,
    });
    let run = engine.approx(aparams).unwrap();
    out.push(Probe {
        labels: run.clustering.labels().to_vec(),
        evals: engine.metric().reset(),
        cache_hit: run.report.cache_hit,
    });
    let run = engine.covertree(params).unwrap();
    out.push(Probe {
        labels: run.clustering.labels().to_vec(),
        evals: engine.metric().reset(),
        cache_hit: run.report.cache_hit,
    });
    let run = engine.streaming(aparams).unwrap();
    out.push(Probe {
        labels: run.clustering.labels().to_vec(),
        evals: engine.metric().reset(),
        cache_hit: run.report.cache_hit,
    });
    out
}

/// The full round-trip contract over one configuration: cold suite,
/// warm suite, save, zero-eval load, and a replayed suite that must
/// match the warm one probe for probe.
#[allow(clippy::too_many_arguments)]
fn assert_round_trip<P, M>(
    points: Vec<P>,
    make_metric: impl Fn() -> M,
    strategy: NetStrategy,
    rbar: f64,
    params: DbscanParams,
    aparams: ApproxParams,
    pruning: PruningConfig,
    file_tag: &str,
) where
    P: PersistPoint + Clone + Sync,
    M: MetricTag,
    CountingMetric<M>: BatchMetric<P>,
{
    let engine = MetricDbscan::builder(points, CountingMetric::new(make_metric()))
        .rbar(rbar)
        .net_strategy(strategy)
        .pruning(pruning)
        .build()
        .unwrap();
    let cold = probe_all(&engine, &params, &aparams);
    let warm = probe_all(&engine, &params, &aparams);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.labels, w.labels, "warm run must replay cold labels");
    }

    let path = temp_path(file_tag);
    engine.save(&path).unwrap();
    let loaded: MetricDbscan<P, CountingMetric<M>> =
        MetricDbscan::load(&path, CountingMetric::new(make_metric())).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(
        loaded.metric().count(),
        0,
        "load must perform zero distance evaluations"
    );
    assert_eq!(loaded.epoch(), engine.epoch());
    assert_eq!(loaded.num_points(), engine.num_points());
    assert_eq!(loaded.num_centers(), engine.num_centers());
    assert_eq!(loaded.net_arc().centers, engine.net_arc().centers);
    assert_eq!(
        loaded.cache_stats(),
        engine.cache_stats(),
        "lifetime cache counters and occupancy must survive the restart"
    );

    let replay = probe_all(&loaded, &params, &aparams);
    for (i, (w, r)) in warm.iter().zip(&replay).enumerate() {
        assert_eq!(
            w.labels, r.labels,
            "solver {i}: labels must be bit-identical"
        );
        assert_eq!(
            w.evals, r.evals,
            "solver {i}: evaluation counts must be bit-identical"
        );
        assert_eq!(
            w.cache_hit, r.cache_hit,
            "solver {i}: cache-hit behavior must survive the restart"
        );
    }
}

#[test]
fn round_trip_vector_pruned_and_unpruned() {
    for (pruning, tag) in [
        (PruningConfig::default(), "vec_pruned"),
        (PruningConfig::off(), "vec_unpruned"),
    ] {
        assert_round_trip(
            vector_points(),
            || Euclidean,
            NetStrategy::Gonzalez,
            0.5,
            DbscanParams::new(1.6, 5).unwrap(),
            ApproxParams::new(1.6, 5, 0.75).unwrap(),
            pruning,
            tag,
        );
    }
}

#[test]
fn round_trip_string_pruned_and_unpruned() {
    for (pruning, tag) in [
        (PruningConfig::default(), "str_pruned"),
        (PruningConfig::off(), "str_unpruned"),
    ] {
        assert_round_trip(
            string_points(),
            || Levenshtein,
            NetStrategy::RadiusGuided,
            1.5,
            DbscanParams::new(4.0, 4).unwrap(),
            ApproxParams::new(4.0, 4, 0.75).unwrap(),
            pruning,
            tag,
        );
    }
}

#[test]
fn ingest_after_load_matches_an_unrestarted_engine() {
    let pts = vector_points();
    let (seed, rest) = pts.split_at(80);
    let (mid, tail) = rest.split_at(60);
    let params = DbscanParams::new(1.6, 5).unwrap();

    let unrestarted = MetricDbscan::builder(seed.to_vec(), CountingMetric::new(Euclidean))
        .rbar(0.5)
        .net_strategy(NetStrategy::RadiusGuided)
        .build()
        .unwrap();
    unrestarted.ingest(mid.to_vec()).unwrap();
    unrestarted.exact(&params).unwrap();

    let path = temp_path("ingest_resume");
    unrestarted.save(&path).unwrap();
    let restarted: MetricDbscan<Vec<f64>, CountingMetric<Euclidean>> =
        MetricDbscan::load(&path, CountingMetric::new(Euclidean)).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(restarted.metric().count(), 0, "zero evals on load");

    // Resume the stream on both engines, batch-split identically — the
    // per-epoch evaluation counts must match too (the restored
    // first-center anchors make the restart invisible even in t_dis).
    for batch in tail.chunks(17) {
        unrestarted.metric().reset();
        restarted.metric().reset();
        let a = unrestarted.ingest(batch.to_vec()).unwrap();
        let b = restarted.ingest(batch.to_vec()).unwrap();
        assert_eq!(a, b, "ingest reports must match");
        assert_eq!(
            unrestarted.metric().count(),
            restarted.metric().count(),
            "per-ingest evaluation counts must match"
        );
        assert_eq!(
            unrestarted.exact(&params).unwrap().clustering,
            restarted.exact(&params).unwrap().clustering,
            "labels must match at every epoch"
        );
    }

    // And both match a never-restarted fresh build over the full
    // sequence (the PR-4 determinism contract, now restart-proof).
    let fresh = MetricDbscan::builder(pts.clone(), CountingMetric::new(Euclidean))
        .rbar(0.5)
        .net_strategy(NetStrategy::RadiusGuided)
        .build()
        .unwrap();
    assert_eq!(restarted.net_arc().centers, fresh.net_arc().centers);
    assert_eq!(
        restarted.exact(&params).unwrap().clustering,
        fresh.exact(&params).unwrap().clustering
    );
}

#[test]
fn snapshot_artifact_is_a_read_replica() {
    let pts = vector_points();
    let (seed, rest) = pts.split_at(150);
    let engine = MetricDbscan::builder(seed.to_vec(), Euclidean)
        .rbar(0.5)
        .net_strategy(NetStrategy::RadiusGuided)
        .build()
        .unwrap();
    let params = DbscanParams::new(1.6, 5).unwrap();
    let pinned = engine.snapshot();
    let expected = pinned.exact(&params).unwrap();

    // The replica artifact pins the epoch even as the engine moves on.
    let path = temp_path("replica");
    pinned.save(&path).unwrap();
    engine.ingest(rest.to_vec()).unwrap();

    let replica: MetricDbscan<Vec<f64>, CountingMetric<Euclidean>> =
        MetricDbscan::load(&path, CountingMetric::new(Euclidean)).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(replica.metric().count(), 0, "zero evals on load");
    assert_eq!(replica.epoch(), 0);
    assert_eq!(replica.num_points(), 150);
    let stats = replica.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    assert_eq!(
        replica.exact(&params).unwrap().clustering,
        expected.clustering,
        "replica answers the pinned epoch bit-identically"
    );

    // A replica may even resume the stream: radius-guided state is all
    // the first-fit rule needs.
    replica.ingest(rest.to_vec()).unwrap();
    assert_eq!(
        replica.exact(&params).unwrap().clustering,
        engine.exact(&params).unwrap().clustering
    );
}

#[test]
fn concurrent_readers_see_one_consistent_loaded_engine() {
    let engine = MetricDbscan::builder(vector_points(), Euclidean)
        .rbar(0.5)
        .build()
        .unwrap();
    let params = DbscanParams::new(1.6, 5).unwrap();
    let expected = engine.exact(&params).unwrap().clustering;
    let path = temp_path("concurrent");
    engine.save(&path).unwrap();
    let loaded: Arc<MetricDbscan<Vec<f64>, Euclidean>> =
        Arc::new(MetricDbscan::load(&path, Euclidean).unwrap());
    std::fs::remove_file(&path).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let loaded = Arc::clone(&loaded);
            std::thread::spawn(move || loaded.exact(&params).unwrap().clustering)
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), expected);
    }
}

#[test]
fn corruption_and_mismatch_fail_typed() {
    let engine = MetricDbscan::builder(vector_points(), Euclidean)
        .rbar(0.5)
        .build()
        .unwrap();
    engine.exact(&DbscanParams::new(1.6, 5).unwrap()).unwrap();
    let path = temp_path("corruption");
    engine.save(&path).unwrap();
    let valid = std::fs::read(&path).unwrap();

    // Missing file → Io.
    let missing = temp_path("never_written");
    assert!(matches!(
        MetricDbscan::<Vec<f64>, Euclidean>::load(&missing, Euclidean),
        Err(DbscanError::Io(_))
    ));

    // Truncation → Format.
    std::fs::write(&path, &valid[..valid.len() / 2]).unwrap();
    assert!(matches!(
        MetricDbscan::<Vec<f64>, Euclidean>::load(&path, Euclidean),
        Err(DbscanError::Format { .. })
    ));

    // One flipped payload byte → Format naming a checksum mismatch.
    let mut flipped = valid.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    match MetricDbscan::<Vec<f64>, Euclidean>::load(&path, Euclidean).map(|_| ()) {
        Err(DbscanError::Format { reason, .. }) => {
            assert!(reason.contains("checksum"), "got: {reason}")
        }
        other => panic!("expected Format, got {other:?}"),
    }

    // Wrong point-type tag → Format in the header.
    std::fs::write(&path, &valid).unwrap();
    match MetricDbscan::<String, Levenshtein>::load(&path, Levenshtein).map(|_| ()) {
        Err(DbscanError::Format { section, reason }) => {
            assert_eq!(section, "header");
            assert!(reason.contains("vec-f64"), "got: {reason}");
        }
        other => panic!("expected Format, got {other:?}"),
    }

    // Wrong metric tag (same point type) → Format in the header.
    match MetricDbscan::<Vec<f64>, Manhattan>::load(&path, Manhattan).map(|_| ()) {
        Err(DbscanError::Format { section, reason }) => {
            assert_eq!(section, "header");
            assert!(reason.contains("euclidean"), "got: {reason}");
        }
        other => panic!("expected Format, got {other:?}"),
    }

    // The pristine bytes still load fine (the file, not the loader,
    // was the problem).
    std::fs::write(&path, &valid).unwrap();
    assert!(MetricDbscan::<Vec<f64>, Euclidean>::load(&path, Euclidean).is_ok());
    std::fs::remove_file(&path).unwrap();
}

/// The deterministic engine behind the golden fixture: fixed data,
/// fixed parameters, one exact query cached before saving.
fn golden_engine() -> MetricDbscan<Vec<f64>, Euclidean> {
    let pts = blobs(
        &BlobSpec {
            n: 90,
            dim: 2,
            clusters: 3,
            std: 0.7,
            center_box: 15.0,
            outlier_frac: 0.1,
        },
        42,
    )
    .into_parts()
    .0;
    let engine = MetricDbscan::builder(pts, Euclidean)
        .rbar(0.5)
        .net_strategy(NetStrategy::RadiusGuided)
        .build()
        .unwrap();
    engine.exact(&golden_params()).unwrap();
    engine
}

fn golden_params() -> DbscanParams {
    DbscanParams::new(1.5, 4).unwrap()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_v1.mdb")
}

/// CI's format-stability guard: the checked-in version-1 artifact must
/// keep loading — with zero evaluations and warm caches — and answer
/// exactly like a freshly built engine over the same (deterministic)
/// data. If this fails, a change broke old files; either restore
/// compatibility or bump `FORMAT_VERSION` *and* the fixture (see
/// `regenerate_golden_fixture`) in a deliberate, documented step.
#[test]
fn golden_v1_fixture_still_loads_and_answers() {
    let loaded: MetricDbscan<Vec<f64>, CountingMetric<Euclidean>> =
        MetricDbscan::load(golden_path(), CountingMetric::new(Euclidean))
            .expect("golden_v1.mdb must stay loadable; see regenerate_golden_fixture");
    assert_eq!(loaded.metric().count(), 0, "zero evals on load");

    let reference = golden_engine();
    let run = loaded.exact(&golden_params()).unwrap();
    assert!(
        run.report.cache_hit,
        "the fixture carries the cached query artifacts"
    );
    assert_eq!(
        run.clustering,
        reference.exact(&golden_params()).unwrap().clustering,
        "golden labels diverged — the format no longer round-trips v1 state"
    );
    assert_eq!(loaded.num_points(), reference.num_points());
    assert_eq!(loaded.net_arc().centers, reference.net_arc().centers);
}

/// Regenerates the golden fixture. Run manually — only together with a
/// deliberate format-version bump:
/// `cargo test --test persistence regenerate_golden_fixture -- --ignored`
#[test]
#[ignore = "writes tests/fixtures/golden_v1.mdb; run only on a deliberate format change"]
fn regenerate_golden_fixture() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    golden_engine().save(&path).unwrap();
}

/// A self-contained VectorBlock engine over `n` row ids.
fn block_engine(n: usize) -> MetricDbscan<u32, CountingMetric<VectorBlock<f64>>> {
    let rows: Vec<Vec<f64>> = blobs(
        &BlobSpec {
            n,
            dim: 3,
            clusters: 4,
            std: 0.6,
            center_box: 15.0,
            outlier_frac: 0.05,
        },
        29,
    )
    .into_parts()
    .0;
    let block = VectorBlock::<f64>::from_rows(&rows);
    MetricDbscan::builder(block.ids(), CountingMetric::new(block))
        .rbar(0.45)
        .net_strategy(NetStrategy::RadiusGuided)
        .build()
        .unwrap()
}

/// The zero-copy cold-start contract: a self-contained VectorBlock
/// artifact loads with the point ids *and* the block's coordinate/norm
/// arrays aliasing the file buffer — the copied-bytes counters stay
/// fixed-size while the payloads grow with n — and the loaded replica
/// answers bit-identically with zero distance evaluations at load and
/// a warm cache hit on the first query.
#[test]
fn self_contained_load_is_zero_copy_and_bit_identical() {
    let params = DbscanParams::new(1.0, 4).unwrap();
    let mut copied_at_n = Vec::new();
    let mut payload_at_n = Vec::new();
    for n in [150usize, 300] {
        let engine = block_engine(n);
        let want = engine.exact(&params).unwrap();
        // The warm-rerun cost of the unrestarted engine is the loaded
        // replica's contract.
        engine.metric().reset();
        engine.exact(&params).unwrap();
        let warm_evals = engine.metric().reset();
        let path = temp_path(&format!("self_contained_{n}"));
        engine.save_self_contained(&path).unwrap();

        let loaded =
            MetricDbscan::<u32, CountingMetric<VectorBlock<f64>>>::load_self_contained(&path)
                .unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.metric().count(), 0, "zero evals on load");
        assert!(
            loaded.metric().inner().is_zero_copy(),
            "block arrays must alias the artifact buffer"
        );
        let stats = loaded.load_stats().expect("loaded engines report stats");
        assert_eq!(
            stats.point_bytes_copied, 0,
            "row ids must alias the artifact buffer"
        );
        assert!(stats.point_payload_bytes >= (n * 4) as u64);
        assert!(stats.metric_payload_bytes >= (n * 3 * 8) as u64);
        copied_at_n.push(stats.bytes_copied());
        payload_at_n.push(stats.point_payload_bytes + stats.metric_payload_bytes);

        let got = loaded.exact(&params).unwrap();
        assert!(got.report.cache_hit, "first post-load query is a warm hit");
        assert_eq!(
            loaded.metric().count(),
            warm_evals,
            "the warm hit must cost exactly what the unrestarted engine pays"
        );
        assert_eq!(got.clustering, want.clustering, "labels must round-trip");
    }
    assert_eq!(
        copied_at_n[0], copied_at_n[1],
        "copied bytes must be independent of n (payload grew {} -> {})",
        payload_at_n[0], payload_at_n[1]
    );
}

/// Interop between the plain and self-contained flows: a self-contained
/// artifact still loads through the plain API (caller's metric wins),
/// and a plain artifact fails the self-contained load with a typed
/// format error instead of garbage.
#[test]
fn self_contained_and_plain_artifacts_interoperate() {
    let params = DbscanParams::new(1.0, 4).unwrap();
    let engine = block_engine(120);
    let want = engine.exact(&params).unwrap();

    let path = temp_path("self_contained_interop");
    engine.save_self_contained(&path).unwrap();
    let plain: MetricDbscan<u32, CountingMetric<VectorBlock<f64>>> =
        MetricDbscan::load(&path, CountingMetric::new(engine.metric().inner().clone())).unwrap();
    assert_eq!(
        plain.exact(&params).unwrap().clustering,
        want.clustering,
        "plain load of a self-contained artifact must answer identically"
    );
    std::fs::remove_file(&path).unwrap();

    let path = temp_path("plain_no_metric");
    engine.save(&path).unwrap();
    let err =
        match MetricDbscan::<u32, CountingMetric<VectorBlock<f64>>>::load_self_contained(&path) {
            Ok(_) => panic!("a plain artifact must not satisfy the self-contained load"),
            Err(e) => e,
        };
    std::fs::remove_file(&path).unwrap();
    assert!(
        matches!(err, DbscanError::Format { .. }),
        "missing metric section must fail typed, got {err:?}"
    );
}

/// `load_latest_self_contained` walks past corrupt checkpoints exactly
/// like the plain walker, and the recovered replica is zero-copy.
#[test]
fn latest_self_contained_checkpoint_survives_corruption() {
    let params = DbscanParams::new(1.0, 4).unwrap();
    let engine = block_engine(130);
    let want = engine.exact(&params).unwrap();

    let mut dir = std::env::temp_dir();
    dir.push(format!("mdbscan_sc_ckpt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s0 = engine.save_checkpoint_self_contained(&dir).unwrap();
    let s1 = engine.save_checkpoint_self_contained(&dir).unwrap();
    assert!(s1 > s0);
    // Corrupt the newest checkpoint; recovery must fall back to s0.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .max()
        .unwrap();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let (loaded, seq) =
        MetricDbscan::<u32, CountingMetric<VectorBlock<f64>>>::load_latest_self_contained(&dir)
            .unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(seq, s0, "must fall back past the corrupt newest file");
    assert!(loaded.metric().inner().is_zero_copy());
    assert_eq!(loaded.exact(&params).unwrap().clustering, want.clustering);
}
